//! Per-code service metrics: request counters, dispatched-batch-size
//! histogram, end-to-end latency, per-stage timing, decoder
//! convergence counters, and a post-mortem event journal.
//!
//! Latency and stage durations live in `qldpc-telemetry`'s
//! [`StreamingHistogram`] — constant memory, never drops a sample —
//! and the percentile figures surfaced through [`LatencyStats`] are
//! quantile *estimates* from its log-spaced buckets (exact min/max,
//! estimates within one bucket width ≈ 26% elsewhere). The summary
//! shape matches `bpsf_core::stats`, the same module the Monte Carlo
//! runners report with, so service and simulation numbers stay
//! comparable.

use bpsf_core::stats::LatencyStats;
use qldpc_decoder_api::{DecodeTelemetry, Precision};
use qldpc_telemetry::{
    EventJournal, Exposition, HistogramSnapshot, StageSet, StageSnapshot, StreamingHistogram,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two batch-size buckets: `[1]`, `[2]`, `(2,4]`,
/// `(4,8]`, … `(128,256]`, `>256`.
pub const BATCH_HISTOGRAM_BUCKETS: usize = 10;

/// Post-mortem journal entries retained per code (worker deaths,
/// overload rejections, shutdown drains — rare, high-signal events).
const JOURNAL_CAPACITY: usize = 256;

/// The quantile estimates every exposed histogram decomposes into.
const EXPOSED_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Live, lock-light counters one registered code's shards share.
#[derive(Debug)]
pub(crate) struct CodeMetrics {
    pub submitted: AtomicU64,
    pub rejected_overload: AtomicU64,
    pub completed: AtomicU64,
    pub expired: AtomicU64,
    /// Requests answered `DecodeError::WorkerLost` because their worker
    /// died before decoding them.
    pub lost: AtomicU64,
    pub batches: AtomicU64,
    /// Live (non-expired) requests summed over all dispatched batches.
    pub batched_requests: AtomicU64,
    /// Requests decoded by a shard other than their home shard.
    pub stolen: AtomicU64,
    batch_histogram: [AtomicU64; BATCH_HISTOGRAM_BUCKETS],
    /// End-to-end (submit → fulfill) latency, in seconds.
    latency: StreamingHistogram,
    /// Samples the histogram refused (non-finite/negative — cannot
    /// happen for `Duration`-sourced values, but the accounting stays
    /// visible rather than silent).
    latency_dropped: AtomicU64,
    /// Per-stage durations (queue-wait, coalesce-wait, steal, kernel,
    /// post-process, fulfill), in seconds.
    pub stages: StageSet,
    /// Decoder convergence-effort counters.
    pub convergence: ConvergenceCounters,
    /// Bounded ring of worker-death/overload events for post-mortems.
    pub journal: EventJournal,
}

impl Default for CodeMetrics {
    fn default() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            batch_histogram: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: StreamingHistogram::new(),
            latency_dropped: AtomicU64::new(0),
            stages: StageSet::new(),
            convergence: ConvergenceCounters::default(),
            journal: EventJournal::new(JOURNAL_CAPACITY),
        }
    }
}

/// Bucket index for a dispatched batch of `size` live requests.
fn bucket_index(size: usize) -> usize {
    debug_assert!(size >= 1);
    let idx = usize::BITS as usize - (size - 1).max(1).leading_zeros() as usize;
    // size=1 → idx formula gives 1 for (size-1).max(1)=1; special-case it.
    if size == 1 {
        0
    } else {
        idx.min(BATCH_HISTOGRAM_BUCKETS - 1)
    }
}

/// Human-readable label of histogram bucket `i`.
pub fn bucket_label(i: usize) -> String {
    match i {
        0 => "1".into(),
        1 => "2".into(),
        _ if i < BATCH_HISTOGRAM_BUCKETS - 1 => format!("{}-{}", (1 << (i - 1)) + 1, 1 << i),
        _ => format!(">{}", 1 << (BATCH_HISTOGRAM_BUCKETS - 2)),
    }
}

impl CodeMetrics {
    /// Records one dispatched batch of `live` decoded requests.
    pub fn record_batch(&self, live: usize) {
        if live == 0 {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(live as u64, Ordering::Relaxed);
        self.batch_histogram[bucket_index(live)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fulfilled response's end-to-end latency.
    pub fn record_latency(&self, total: Duration) {
        if !self.latency.record(total.as_secs_f64()) {
            self.latency_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Consistent point-in-time copy of all counters, stamped with the
    /// code's declared decoder precision.
    pub fn snapshot(&self, precision: Precision) -> MetricsSnapshot {
        let latency = self.latency.snapshot();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        MetricsSnapshot {
            precision,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            lost: self.lost.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            stolen: self.stolen.load(Ordering::Relaxed),
            batch_histogram: std::array::from_fn(|i| {
                self.batch_histogram[i].load(Ordering::Relaxed)
            }),
            latency_ms: latency_stats_ms(&latency),
            latency_samples_dropped: self.latency_dropped.load(Ordering::Relaxed),
            latency,
            stages: self.stages.snapshot(),
            convergence: self.convergence.snapshot(),
        }
    }
}

/// Converts a seconds-valued latency histogram into the millisecond
/// [`LatencyStats`] shape the pre-histogram metrics exposed; the
/// percentile fields are bucket-quantile estimates, min/max/mean exact.
fn latency_stats_ms(h: &HistogramSnapshot) -> LatencyStats {
    LatencyStats {
        count: h.count as usize,
        mean: h.mean() * 1e3,
        min: h.min * 1e3,
        max: h.max * 1e3,
        median: h.quantile(0.5) * 1e3,
        p95: h.quantile(0.95) * 1e3,
        p99: h.quantile(0.99) * 1e3,
    }
}

/// Decoder convergence-effort counters, accumulated from the
/// [`DecodeTelemetry`] of every outcome a code's workers produce (plus
/// spill/carry sizes recorded by streaming sessions as they commit).
#[derive(Debug, Default)]
pub(crate) struct ConvergenceCounters {
    decodes: AtomicU64,
    bp_iterations: AtomicU64,
    bp_converged: AtomicU64,
    oscillating_bits: AtomicU64,
    osd_invocations: AtomicU64,
    osd_candidates: AtomicU64,
    sf_trials: AtomicU64,
    window_spill_bits: AtomicU64,
    window_carried_priors: AtomicU64,
}

impl ConvergenceCounters {
    /// Folds one decode outcome's telemetry into the running totals.
    pub fn record_outcome(&self, t: &DecodeTelemetry) {
        self.decodes.fetch_add(1, Ordering::Relaxed);
        self.bp_iterations
            .fetch_add(t.bp_iterations, Ordering::Relaxed);
        self.bp_converged
            .fetch_add(u64::from(t.bp_converged), Ordering::Relaxed);
        self.oscillating_bits
            .fetch_add(t.oscillating_bits, Ordering::Relaxed);
        self.osd_invocations
            .fetch_add(t.osd_invocations, Ordering::Relaxed);
        self.osd_candidates
            .fetch_add(t.osd_candidates, Ordering::Relaxed);
        self.sf_trials.fetch_add(t.sf_trials, Ordering::Relaxed);
        self.window_spill_bits
            .fetch_add(t.window_spill_bits, Ordering::Relaxed);
        self.window_carried_priors
            .fetch_add(t.window_carried_priors, Ordering::Relaxed);
    }

    /// Records one streaming-session window commit (the session, not
    /// the kernel, owns spill application and prior carrying).
    pub fn record_window_commit(&self, spill_bits: u64, carried_priors: u64) {
        self.window_spill_bits
            .fetch_add(spill_bits, Ordering::Relaxed);
        self.window_carried_priors
            .fetch_add(carried_priors, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ConvergenceSnapshot {
        ConvergenceSnapshot {
            decodes: self.decodes.load(Ordering::Relaxed),
            bp_iterations: self.bp_iterations.load(Ordering::Relaxed),
            bp_converged: self.bp_converged.load(Ordering::Relaxed),
            oscillating_bits: self.oscillating_bits.load(Ordering::Relaxed),
            osd_invocations: self.osd_invocations.load(Ordering::Relaxed),
            osd_candidates: self.osd_candidates.load(Ordering::Relaxed),
            sf_trials: self.sf_trials.load(Ordering::Relaxed),
            window_spill_bits: self.window_spill_bits.load(Ordering::Relaxed),
            window_carried_priors: self.window_carried_priors.load(Ordering::Relaxed),
        }
    }
}

/// Frozen view of one code's convergence counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConvergenceSnapshot {
    /// Decode outcomes recorded (single-shot decodes + window decodes).
    pub decodes: u64,
    /// Total BP iterations across all recorded outcomes.
    pub bp_iterations: u64,
    /// Outcomes whose initial BP attempt converged.
    pub bp_converged: u64,
    /// Total oscillating bits observed (oscillation-tracking decoders).
    pub oscillating_bits: u64,
    /// OSD post-processing invocations.
    pub osd_invocations: u64,
    /// OSD candidate patterns swept.
    pub osd_candidates: u64,
    /// Syndrome-flip trials executed (BP-SF decoders).
    pub sf_trials: u64,
    /// Detector bits flipped by committed-correction spill (streaming).
    pub window_spill_bits: u64,
    /// Posterior beliefs carried across window boundaries (streaming).
    pub window_carried_priors: u64,
}

impl ConvergenceSnapshot {
    /// Mean BP iterations per recorded decode (0.0 before any decode).
    pub fn mean_bp_iterations(&self) -> f64 {
        if self.decodes == 0 {
            0.0
        } else {
            self.bp_iterations as f64 / self.decodes as f64
        }
    }
}

/// Frozen view of one code's service metrics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Declared message precision of this code's decoder pool
    /// (`ServiceConfig::precision`).
    pub precision: Precision,
    /// Requests accepted into a shard queue.
    pub submitted: u64,
    /// Submissions refused with `SubmitError::Overloaded`.
    pub rejected_overload: u64,
    /// Requests decoded and fulfilled.
    pub completed: u64,
    /// Requests fulfilled with `DecodeError::DeadlineExceeded`.
    pub expired: u64,
    /// Requests fulfilled with `DecodeError::WorkerLost` (their worker
    /// died before producing an outcome).
    pub lost: u64,
    /// Batches dispatched to `decode_batch`.
    pub batches: u64,
    /// Mean live requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Requests decoded by a non-home shard (work stealing).
    pub stolen: u64,
    /// Dispatched-batch-size counts in power-of-two buckets
    /// (see [`bucket_label`]).
    pub batch_histogram: [u64; BATCH_HISTOGRAM_BUCKETS],
    /// End-to-end (submit → fulfill) latency statistics in milliseconds;
    /// `latency_ms.median`/`.p95`/`.p99` are bucket-quantile estimates
    /// from [`Self::latency`] (min/max/mean/count exact).
    pub latency_ms: LatencyStats,
    /// Latency samples the histogram refused (non-finite input).
    pub latency_samples_dropped: u64,
    /// The full end-to-end latency histogram, in seconds.
    pub latency: HistogramSnapshot,
    /// Per-stage duration histograms, in seconds.
    pub stages: StageSnapshot,
    /// Decoder convergence-effort counters.
    pub convergence: ConvergenceSnapshot,
}

impl MetricsSnapshot {
    /// All accepted requests are accounted for:
    /// `completed + expired + lost == submitted` once the service has
    /// drained (lost covers requests answered for a dead worker).
    pub fn is_drained(&self) -> bool {
        self.completed + self.expired + self.lost == self.submitted
    }

    /// Multi-line human-readable rendering (bench/soak output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "precision={} submitted={} completed={} expired={} lost={} rejected={} batches={} \
             mean_batch={:.2} stolen={}\n  latency_ms: {} (dropped={})\n  batch sizes:\n",
            self.precision,
            self.submitted,
            self.completed,
            self.expired,
            self.lost,
            self.rejected_overload,
            self.batches,
            self.mean_batch_size,
            self.stolen,
            self.latency_ms.summary(),
            self.latency_samples_dropped,
        );
        for (i, &count) in self.batch_histogram.iter().enumerate() {
            if count > 0 {
                out.push_str(&format!("    {:>7}: {}\n", bucket_label(i), count));
            }
        }
        out
    }

    /// Emits this snapshot's series into a text exposition under
    /// `code="{code}"` labels — the per-code half of
    /// `DecodeService::render_exposition`. Timing-valued series carry a
    /// `_seconds` name component (golden tests range-check those and
    /// byte-compare the rest).
    /// With `node` set, every series additionally carries
    /// `node="{node}"` so scrapes from several service nodes aggregate
    /// without colliding (the networked front-end threads its configured
    /// identity through here).
    pub fn exposition_into(&self, code: &str, node: Option<&str>, exp: &mut Exposition) {
        fn joined<'a>(
            base: &[(&'a str, &'a str)],
            extra: &[(&'a str, &'a str)],
        ) -> Vec<(&'a str, &'a str)> {
            let mut labels = base.to_vec();
            labels.extend_from_slice(extra);
            labels
        }
        let mut base: Vec<(&str, &str)> = vec![("code", code)];
        if let Some(node) = node {
            base.push(("node", node));
        }
        let l = &base;
        exp.counter(
            "qldpc_code_info",
            &joined(&base, &[("precision", self.precision.name())]),
            1,
        );
        exp.counter("qldpc_requests_submitted_total", l, self.submitted);
        exp.counter(
            "qldpc_requests_rejected_overload_total",
            l,
            self.rejected_overload,
        );
        exp.counter("qldpc_requests_completed_total", l, self.completed);
        exp.counter("qldpc_requests_expired_total", l, self.expired);
        exp.counter("qldpc_requests_lost_total", l, self.lost);
        exp.counter("qldpc_requests_stolen_total", l, self.stolen);
        exp.counter("qldpc_batches_total", l, self.batches);
        exp.gauge("qldpc_batch_size_mean", l, self.mean_batch_size);
        exp.counter(
            "qldpc_latency_samples_dropped_total",
            l,
            self.latency_samples_dropped,
        );
        for (i, &count) in self.batch_histogram.iter().enumerate() {
            let size = bucket_label(i);
            exp.counter(
                "qldpc_batch_size_bucket",
                &joined(&base, &[("size", &size)]),
                count,
            );
        }
        exp.histogram(
            "qldpc_request_duration_seconds",
            l,
            &self.latency,
            &EXPOSED_QUANTILES,
        );
        for (stage, h) in self.stages.iter() {
            // The kernel span is the only stage whose duration depends
            // on which explicit-SIMD batch kernel the decoder dispatched
            // to, so its series carries the active target as a label —
            // appended after `stage` so prefix-matching consumers keep
            // working. Other stages are dispatch-independent.
            if stage == qldpc_telemetry::Stage::Kernel {
                exp.histogram(
                    "qldpc_stage_duration_seconds",
                    &joined(
                        &base,
                        &[
                            ("stage", stage.name()),
                            ("simd", qldpc_bp::active_simd_target().name()),
                        ],
                    ),
                    h,
                    &EXPOSED_QUANTILES,
                );
            } else {
                exp.histogram(
                    "qldpc_stage_duration_seconds",
                    &joined(&base, &[("stage", stage.name())]),
                    h,
                    &EXPOSED_QUANTILES,
                );
            }
        }
        let c = &self.convergence;
        exp.counter("qldpc_decodes_total", l, c.decodes);
        exp.counter("qldpc_bp_iterations_total", l, c.bp_iterations);
        exp.counter("qldpc_bp_converged_total", l, c.bp_converged);
        exp.counter("qldpc_oscillating_bits_total", l, c.oscillating_bits);
        exp.counter("qldpc_osd_invocations_total", l, c.osd_invocations);
        exp.counter("qldpc_osd_candidate_sweeps_total", l, c.osd_candidates);
        exp.counter("qldpc_sf_trials_total", l, c.sf_trials);
        exp.counter("qldpc_window_spill_bits_total", l, c.window_spill_bits);
        exp.counter(
            "qldpc_window_carried_priors_total",
            l,
            c.window_carried_priors,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_power_of_two_ranges() {
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(128), 7);
        assert_eq!(bucket_index(129), 8);
        assert_eq!(bucket_index(256), 8);
        assert_eq!(bucket_index(257), BATCH_HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(100_000), BATCH_HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_labels_cover_all_buckets() {
        assert_eq!(bucket_label(0), "1");
        assert_eq!(bucket_label(1), "2");
        assert_eq!(bucket_label(2), "3-4");
        assert_eq!(bucket_label(7), "65-128");
        assert_eq!(bucket_label(BATCH_HISTOGRAM_BUCKETS - 1), ">256");
    }

    #[test]
    fn snapshot_mean_and_histogram() {
        let m = CodeMetrics::default();
        m.record_batch(1);
        m.record_batch(8);
        m.record_batch(0); // ignored
        m.record_latency(Duration::from_millis(2));
        m.record_latency(Duration::from_millis(4));
        let s = m.snapshot(Precision::F64);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 4.5).abs() < 1e-12);
        assert_eq!(s.batch_histogram[0], 1);
        assert_eq!(s.batch_histogram[3], 1);
        assert_eq!(s.latency_ms.count, 2);
        assert!((s.latency_ms.mean - 3.0).abs() < 1e-9);
        assert_eq!(s.latency_samples_dropped, 0);
        // Exact extrema survive the histogram representation.
        assert!((s.latency_ms.min - 2.0).abs() < 1e-9);
        assert!((s.latency_ms.max - 4.0).abs() < 1e-9);
        // Quantile estimates stay inside the observed range.
        assert!(s.latency_ms.median >= 2.0 && s.latency_ms.median <= 4.0);
        assert_eq!(s.latency.count, 2);
    }

    #[test]
    fn long_soaks_never_drop_latency_samples() {
        let m = CodeMetrics::default();
        for i in 0..300_000 {
            m.record_latency(Duration::from_nanos(1_000 + i));
        }
        let s = m.snapshot(Precision::F64);
        assert_eq!(s.latency_ms.count, 300_000);
        assert_eq!(s.latency_samples_dropped, 0);
    }

    #[test]
    fn convergence_counters_accumulate() {
        let m = CodeMetrics::default();
        let t = DecodeTelemetry {
            bp_iterations: 17,
            bp_converged: true,
            oscillating_bits: 3,
            osd_invocations: 0,
            osd_candidates: 0,
            sf_trials: 0,
            window_spill_bits: 0,
            window_carried_priors: 0,
        };
        m.convergence.record_outcome(&t);
        m.convergence.record_outcome(&DecodeTelemetry {
            bp_iterations: 40,
            bp_converged: false,
            osd_invocations: 1,
            osd_candidates: 11,
            ..DecodeTelemetry::default()
        });
        m.convergence.record_window_commit(5, 9);
        let c = m.snapshot(Precision::F64).convergence;
        assert_eq!(c.decodes, 2);
        assert_eq!(c.bp_iterations, 57);
        assert_eq!(c.bp_converged, 1);
        assert_eq!(c.oscillating_bits, 3);
        assert_eq!(c.osd_invocations, 1);
        assert_eq!(c.osd_candidates, 11);
        assert_eq!(c.window_spill_bits, 5);
        assert_eq!(c.window_carried_priors, 9);
        assert!((c.mean_bp_iterations() - 28.5).abs() < 1e-12);
    }

    #[test]
    fn render_reports_dropped_samples() {
        let m = CodeMetrics::default();
        m.latency_dropped.store(7, Ordering::Relaxed);
        let text = m.snapshot(Precision::F64).render();
        assert!(text.contains("(dropped=7)"), "render: {text}");
    }

    #[test]
    fn exposition_covers_the_required_stages() {
        let m = CodeMetrics::default();
        m.submitted.store(3, Ordering::Relaxed);
        let mut exp = Exposition::new();
        m.snapshot(Precision::F32)
            .exposition_into("gross", None, &mut exp);
        let text = exp.render();
        assert!(text.contains("qldpc_requests_submitted_total{code=\"gross\"} 3"));
        assert!(text.contains("qldpc_code_info{code=\"gross\",precision=\"f32\"} 1"));
        for stage in [
            "queue_wait",
            "coalesce_wait",
            "steal",
            "kernel",
            "post_process",
            "fulfill",
        ] {
            // The kernel span alone is labeled with the SIMD dispatch
            // target its decode calls ran on.
            let needle = if stage == "kernel" {
                format!(
                    "qldpc_stage_duration_seconds_count{{code=\"gross\",stage=\"kernel\",\
                     simd=\"{}\"}}",
                    qldpc_bp::active_simd_target()
                )
            } else {
                format!("qldpc_stage_duration_seconds_count{{code=\"gross\",stage=\"{stage}\"}}")
            };
            assert!(text.contains(&needle), "missing stage {stage}");
        }
        // Deterministically ordered: rendering twice is byte-identical.
        let mut exp2 = Exposition::new();
        m.snapshot(Precision::F32)
            .exposition_into("gross", None, &mut exp2);
        assert_eq!(text, exp2.render());
    }

    #[test]
    fn drained_accounting() {
        let m = CodeMetrics::default();
        m.submitted.store(5, Ordering::Relaxed);
        m.completed.store(3, Ordering::Relaxed);
        m.expired.store(1, Ordering::Relaxed);
        assert!(!m.snapshot(Precision::F64).is_drained());
        // A request answered for a dead worker still counts as drained.
        m.lost.store(1, Ordering::Relaxed);
        assert!(m.snapshot(Precision::F64).is_drained());
        m.expired.store(2, Ordering::Relaxed);
        assert!(!m.snapshot(Precision::F64).is_drained());
    }
}
