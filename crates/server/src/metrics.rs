//! Per-code service metrics: request counters, dispatched-batch-size
//! histogram, and end-to-end latency percentiles.
//!
//! The percentile math is `bpsf_core::stats` — the same module the
//! Monte Carlo runners in `qldpc-sim` report with, so service and
//! simulation latency numbers are computed identically.

use bpsf_core::stats::LatencyStats;
use qldpc_decoder_api::Precision;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two batch-size buckets: `[1]`, `[2]`, `(2,4]`,
/// `(4,8]`, … `(128,256]`, `>256`.
pub const BATCH_HISTOGRAM_BUCKETS: usize = 10;

/// Cap on retained latency samples; beyond it new samples are counted in
/// [`MetricsSnapshot::latency_samples_dropped`] but not stored, bounding
/// a long-running service's memory.
const MAX_LATENCY_SAMPLES: usize = 1 << 18;

/// Live, lock-light counters one registered code's shards share.
#[derive(Debug, Default)]
pub(crate) struct CodeMetrics {
    pub submitted: AtomicU64,
    pub rejected_overload: AtomicU64,
    pub completed: AtomicU64,
    pub expired: AtomicU64,
    /// Requests answered `DecodeError::WorkerLost` because their worker
    /// died before decoding them.
    pub lost: AtomicU64,
    pub batches: AtomicU64,
    /// Live (non-expired) requests summed over all dispatched batches.
    pub batched_requests: AtomicU64,
    /// Requests decoded by a shard other than their home shard.
    pub stolen: AtomicU64,
    batch_histogram: [AtomicU64; BATCH_HISTOGRAM_BUCKETS],
    latency_ms: Mutex<Vec<f64>>,
    latency_dropped: AtomicU64,
}

/// Bucket index for a dispatched batch of `size` live requests.
fn bucket_index(size: usize) -> usize {
    debug_assert!(size >= 1);
    let idx = usize::BITS as usize - (size - 1).max(1).leading_zeros() as usize;
    // size=1 → idx formula gives 1 for (size-1).max(1)=1; special-case it.
    if size == 1 {
        0
    } else {
        idx.min(BATCH_HISTOGRAM_BUCKETS - 1)
    }
}

/// Human-readable label of histogram bucket `i`.
pub fn bucket_label(i: usize) -> String {
    match i {
        0 => "1".into(),
        1 => "2".into(),
        _ if i < BATCH_HISTOGRAM_BUCKETS - 1 => format!("{}-{}", (1 << (i - 1)) + 1, 1 << i),
        _ => format!(">{}", 1 << (BATCH_HISTOGRAM_BUCKETS - 2)),
    }
}

impl CodeMetrics {
    /// Records one dispatched batch of `live` decoded requests.
    pub fn record_batch(&self, live: usize) {
        if live == 0 {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(live as u64, Ordering::Relaxed);
        self.batch_histogram[bucket_index(live)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fulfilled response's end-to-end latency.
    pub fn record_latency(&self, total: Duration) {
        let mut samples = self.latency_ms.lock().expect("metrics mutex poisoned");
        if samples.len() < MAX_LATENCY_SAMPLES {
            samples.push(total.as_secs_f64() * 1e3);
        } else {
            self.latency_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Consistent point-in-time copy of all counters, stamped with the
    /// code's declared decoder precision.
    pub fn snapshot(&self, precision: Precision) -> MetricsSnapshot {
        let latency = self
            .latency_ms
            .lock()
            .expect("metrics mutex poisoned")
            .clone();
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        MetricsSnapshot {
            precision,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            lost: self.lost.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            stolen: self.stolen.load(Ordering::Relaxed),
            batch_histogram: std::array::from_fn(|i| {
                self.batch_histogram[i].load(Ordering::Relaxed)
            }),
            latency_ms: LatencyStats::from_samples(latency),
            latency_samples_dropped: self.latency_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Frozen view of one code's service metrics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Declared message precision of this code's decoder pool
    /// (`ServiceConfig::precision`).
    pub precision: Precision,
    /// Requests accepted into a shard queue.
    pub submitted: u64,
    /// Submissions refused with `SubmitError::Overloaded`.
    pub rejected_overload: u64,
    /// Requests decoded and fulfilled.
    pub completed: u64,
    /// Requests fulfilled with `DecodeError::DeadlineExceeded`.
    pub expired: u64,
    /// Requests fulfilled with `DecodeError::WorkerLost` (their worker
    /// died before producing an outcome).
    pub lost: u64,
    /// Batches dispatched to `decode_batch`.
    pub batches: u64,
    /// Mean live requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Requests decoded by a non-home shard (work stealing).
    pub stolen: u64,
    /// Dispatched-batch-size counts in power-of-two buckets
    /// (see [`bucket_label`]).
    pub batch_histogram: [u64; BATCH_HISTOGRAM_BUCKETS],
    /// End-to-end (submit → fulfill) latency statistics in milliseconds;
    /// `latency_ms.median`/`.p95`/`.p99` are the p50/p95/p99 figures.
    pub latency_ms: LatencyStats,
    /// Latency samples discarded after the retention cap.
    pub latency_samples_dropped: u64,
}

impl MetricsSnapshot {
    /// All accepted requests are accounted for:
    /// `completed + expired + lost == submitted` once the service has
    /// drained (lost covers requests answered for a dead worker).
    pub fn is_drained(&self) -> bool {
        self.completed + self.expired + self.lost == self.submitted
    }

    /// Multi-line human-readable rendering (bench/soak output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "precision={} submitted={} completed={} expired={} lost={} rejected={} batches={} \
             mean_batch={:.2} stolen={}\n  latency_ms: {}\n  batch sizes:\n",
            self.precision,
            self.submitted,
            self.completed,
            self.expired,
            self.lost,
            self.rejected_overload,
            self.batches,
            self.mean_batch_size,
            self.stolen,
            self.latency_ms.summary(),
        );
        for (i, &count) in self.batch_histogram.iter().enumerate() {
            if count > 0 {
                out.push_str(&format!("    {:>7}: {}\n", bucket_label(i), count));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_power_of_two_ranges() {
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(128), 7);
        assert_eq!(bucket_index(129), 8);
        assert_eq!(bucket_index(256), 8);
        assert_eq!(bucket_index(257), BATCH_HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(100_000), BATCH_HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_labels_cover_all_buckets() {
        assert_eq!(bucket_label(0), "1");
        assert_eq!(bucket_label(1), "2");
        assert_eq!(bucket_label(2), "3-4");
        assert_eq!(bucket_label(7), "65-128");
        assert_eq!(bucket_label(BATCH_HISTOGRAM_BUCKETS - 1), ">256");
    }

    #[test]
    fn snapshot_mean_and_histogram() {
        let m = CodeMetrics::default();
        m.record_batch(1);
        m.record_batch(8);
        m.record_batch(0); // ignored
        m.record_latency(Duration::from_millis(2));
        m.record_latency(Duration::from_millis(4));
        let s = m.snapshot(Precision::F64);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 4.5).abs() < 1e-12);
        assert_eq!(s.batch_histogram[0], 1);
        assert_eq!(s.batch_histogram[3], 1);
        assert_eq!(s.latency_ms.count, 2);
        assert!((s.latency_ms.mean - 3.0).abs() < 1e-9);
        assert_eq!(s.latency_samples_dropped, 0);
    }

    #[test]
    fn drained_accounting() {
        let m = CodeMetrics::default();
        m.submitted.store(5, Ordering::Relaxed);
        m.completed.store(3, Ordering::Relaxed);
        m.expired.store(1, Ordering::Relaxed);
        assert!(!m.snapshot(Precision::F64).is_drained());
        // A request answered for a dead worker still counts as drained.
        m.lost.store(1, Ordering::Relaxed);
        assert!(m.snapshot(Precision::F64).is_drained());
        m.expired.store(2, Ordering::Relaxed);
        assert!(!m.snapshot(Precision::F64).is_drained());
    }
}
