//! Ordered-statistics decoding (OSD) post-processing for BP.
//!
//! This is the **baseline the BP-SF paper competes against**: when BP fails
//! to converge, OSD re-solves the syndrome equation exactly by Gaussian
//! elimination over a reliability-ordered information set (Panteleev &
//! Kalachev 2021; Roffe et al. 2020). Two search strategies are provided:
//!
//! * **OSD-0** — the non-pivot ("residual") bits are all zero,
//! * **OSD-CS (combination sweep) of order λ** — additionally tries every
//!   weight-1 residual pattern, plus every weight-2 pattern within the λ
//!   least reliable residual positions, keeping the best-scoring solution.
//!
//! The Gaussian elimination step costs `O(N³)` in the worst case — the
//! expense BP-SF eliminates (see the `osd_elimination` Criterion bench).
//!
//! # Examples
//!
//! ```
//! use qldpc_bp::BpConfig;
//! use qldpc_osd::{BpOsdDecoder, OsdConfig};
//! use qldpc_gf2::{BitVec, SparseBitMatrix};
//!
//! let h = SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]]);
//! let mut dec = BpOsdDecoder::new(&h, &[0.1, 0.1, 0.1], BpConfig::default(), OsdConfig::default());
//! let e = BitVec::from_indices(3, &[0]);
//! let r = dec.decode(&h.mul_vec(&e));
//! assert_eq!(r.error_hat, e);
//! ```

use qldpc_bp::{BpConfig, MinSumDecoder, Schedule};
pub use qldpc_decoder_api::{DecodeOutcome, SyndromeDecoder};
use qldpc_gf2::{BitMatrix, BitVec, SparseBitMatrix};

/// How OSD scores candidate solutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OsdSelection {
    /// Choose the candidate with the smallest Hamming weight.
    MinWeight,
    /// Choose the candidate with the smallest soft cost
    /// `Σ_{i ∈ supp(e)} ln((1−p_i)/p_i)` under the channel priors —
    /// the most probable error. This is the default.
    #[default]
    SoftWeight,
}

/// OSD search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsdConfig {
    /// Combination-sweep order λ. `0` selects plain OSD-0. The paper's
    /// baseline is order 10 ("OSD10").
    pub order: usize,
    /// Candidate scoring rule.
    pub selection: OsdSelection,
}

impl Default for OsdConfig {
    fn default() -> Self {
        Self {
            order: 10,
            selection: OsdSelection::SoftWeight,
        }
    }
}

/// Outcome of a BP+OSD decode.
#[derive(Debug, Clone)]
pub struct OsdResult {
    /// The estimated error. Always satisfies the syndrome when
    /// [`OsdResult::solved`] is true.
    pub error_hat: BitVec,
    /// Whether a syndrome-satisfying solution was produced (BP converged,
    /// or the OSD linear system was consistent — it always is when the
    /// syndrome was produced by a real error).
    pub solved: bool,
    /// Whether plain BP already converged (OSD skipped).
    pub bp_converged: bool,
    /// BP iterations executed.
    pub bp_iterations: usize,
    /// Number of OSD candidate patterns scored (0 when OSD was skipped).
    pub osd_candidates: usize,
}

/// BP decoding with OSD fallback (the paper's "BPxxxx-OSDyy" baseline).
///
/// Owns a [`MinSumDecoder`] and a dense copy of the check matrix for
/// elimination. Clone to use from several threads.
#[derive(Debug, Clone)]
pub struct BpOsdDecoder {
    bp: MinSumDecoder,
    h_dense: BitMatrix,
    priors: Vec<f64>,
    config: OsdConfig,
}

impl BpOsdDecoder {
    /// Builds a BP+OSD decoder.
    ///
    /// # Panics
    ///
    /// Panics if `priors.len() != h.cols()`.
    pub fn new(h: &SparseBitMatrix, priors: &[f64], bp: BpConfig, config: OsdConfig) -> Self {
        assert_eq!(priors.len(), h.cols(), "one prior per variable required");
        Self {
            bp: MinSumDecoder::new(h, priors, bp),
            h_dense: h.to_dense(),
            priors: priors.to_vec(),
            config,
        }
    }

    /// The inner BP decoder.
    pub fn bp(&self) -> &MinSumDecoder {
        &self.bp
    }

    /// The OSD configuration.
    pub fn config(&self) -> &OsdConfig {
        &self.config
    }

    /// Decodes a syndrome: BP first, OSD on BP failure.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length differs from the number of checks.
    pub fn decode(&mut self, syndrome: &BitVec) -> OsdResult {
        let bp_result = self.bp.decode(syndrome);
        if bp_result.converged {
            return OsdResult {
                error_hat: bp_result.error_hat,
                solved: true,
                bp_converged: true,
                bp_iterations: bp_result.iterations,
                osd_candidates: 0,
            };
        }
        let (error_hat, solved, candidates) = osd_postprocess(
            &self.h_dense,
            syndrome,
            &bp_result.posteriors,
            &self.priors,
            self.config,
        );
        OsdResult {
            error_hat,
            solved,
            bp_converged: false,
            bp_iterations: bp_result.iterations,
            osd_candidates: candidates,
        }
    }
}

/// Runs the OSD stage alone, given BP soft output.
///
/// Returns `(error, solved, candidates_scored)`. `solved` is false only
/// when the linear system `H·e = s` is inconsistent, which cannot happen
/// for syndromes generated by actual errors.
///
/// Columns are ordered by *descending probability of error*, i.e.
/// ascending posterior LLR, so the most suspicious bits land in the
/// information set (pivots).
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn osd_postprocess(
    h: &BitMatrix,
    syndrome: &BitVec,
    posteriors: &[f64],
    priors: &[f64],
    config: OsdConfig,
) -> (BitVec, bool, usize) {
    assert_eq!(
        posteriors.len(),
        h.cols(),
        "one posterior per column required"
    );
    assert_eq!(priors.len(), h.cols(), "one prior per column required");
    let n = h.cols();

    // Reliability order: most-likely-in-error first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        posteriors[a]
            .partial_cmp(&posteriors[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let ech = h.ordered_echelon(syndrome, &order);
    if !ech.is_consistent() {
        return (BitVec::zeros(n), false, 0);
    }

    // Per-column soft cost for candidate scoring.
    let cost: Vec<f64> = priors
        .iter()
        .map(|&p| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            ((1.0 - p) / p).ln().max(1e-9)
        })
        .collect();
    let score = |e: &BitVec| -> f64 {
        match config.selection {
            OsdSelection::MinWeight => e.weight() as f64,
            OsdSelection::SoftWeight => e.iter_ones().map(|i| cost[i]).sum(),
        }
    };

    // OSD-0 candidate.
    let mut best = ech.solve_for_pattern(&[]);
    let mut best_score = score(&best);
    let mut candidates = 1usize;

    if config.order > 0 {
        let t = ech.residual_cols().len();
        // All weight-1 residual patterns.
        for j in 0..t {
            let e = ech.solve_for_pattern(&[j]);
            let sc = score(&e);
            candidates += 1;
            if sc < best_score {
                best_score = sc;
                best = e;
            }
        }
        // Weight-2 patterns within the first λ residual positions (the
        // least reliable ones, since `residual_cols` preserves the
        // reliability order).
        let lambda = config.order.min(t);
        for a in 0..lambda {
            for b in (a + 1)..lambda {
                let e = ech.solve_for_pattern(&[a, b]);
                let sc = score(&e);
                candidates += 1;
                if sc < best_score {
                    best_score = sc;
                    best = e;
                }
            }
        }
    }
    (best, true, candidates)
}

impl SyndromeDecoder for BpOsdDecoder {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        let r = self.decode(syndrome);
        DecodeOutcome {
            error_hat: r.error_hat,
            solved: r.solved,
            serial_iterations: r.bp_iterations,
            critical_iterations: r.bp_iterations,
            postprocessed: !r.bp_converged,
        }
    }

    /// `"BP{bp_iters}-OSD{order}"` (with a `Layered` prefix under the
    /// layered schedule) — the paper's baseline names.
    fn label(&self) -> String {
        let bp = self.bp.config();
        let prefix = match bp.schedule {
            Schedule::Flooding => "",
            Schedule::Layered => "Layered",
        };
        format!("{prefix}BP{}-OSD{}", bp.max_iters, self.config.order)
    }

    fn family(&self) -> qldpc_decoder_api::DecoderFamily {
        qldpc_decoder_api::DecoderFamily::BpOsd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_codes::bb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_h() -> SparseBitMatrix {
        SparseBitMatrix::from_row_indices(3, 6, &[vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0]])
    }

    #[test]
    fn osd_solution_satisfies_syndrome() {
        let h = small_h();
        let mut dec = BpOsdDecoder::new(
            &h,
            &[0.1; 6],
            BpConfig {
                max_iters: 2,
                ..BpConfig::default()
            },
            OsdConfig::default(),
        );
        for mask in 0..8u32 {
            let s = BitVec::from_bools(&[(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0]);
            let r = dec.decode(&s);
            assert!(r.solved);
            assert_eq!(
                h.mul_vec(&r.error_hat),
                s,
                "syndrome {mask:#b} not satisfied"
            );
        }
    }

    #[test]
    fn osd0_vs_cs_candidate_counts() {
        let h = small_h();
        let s = BitVec::from_indices(3, &[0, 1]);
        let posteriors = vec![0.0; 6];
        let priors = vec![0.1; 6];
        let (_, solved0, c0) = osd_postprocess(
            &h.to_dense(),
            &s,
            &posteriors,
            &priors,
            OsdConfig {
                order: 0,
                selection: OsdSelection::MinWeight,
            },
        );
        let (_, solved10, c10) = osd_postprocess(
            &h.to_dense(),
            &s,
            &posteriors,
            &priors,
            OsdConfig {
                order: 10,
                selection: OsdSelection::MinWeight,
            },
        );
        assert!(solved0 && solved10);
        assert_eq!(c0, 1);
        // rank = 3, so residual size t = 3: 1 + 3 weight-1 + C(3,2) weight-2.
        assert_eq!(c10, 1 + 3 + 3);
    }

    #[test]
    fn osd_cs_never_worse_than_osd0() {
        let code = bb::bb72();
        let hz = code.hz();
        let n = hz.cols();
        let priors = vec![0.03; n];
        let mut rng = StdRng::seed_from_u64(7);
        let dense = hz.to_dense();
        for _ in 0..10 {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(0.03) {
                    e.set(i, true);
                }
            }
            let s = hz.mul_vec(&e);
            // Uninformative posteriors so OSD does the heavy lifting.
            let posteriors: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
            let (e0, _, _) = osd_postprocess(
                &dense,
                &s,
                &posteriors,
                &priors,
                OsdConfig {
                    order: 0,
                    selection: OsdSelection::MinWeight,
                },
            );
            let (ecs, _, _) = osd_postprocess(
                &dense,
                &s,
                &posteriors,
                &priors,
                OsdConfig {
                    order: 10,
                    selection: OsdSelection::MinWeight,
                },
            );
            assert_eq!(dense.mul_vec(&e0), s);
            assert_eq!(dense.mul_vec(&ecs), s);
            assert!(
                ecs.weight() <= e0.weight(),
                "CS must not be heavier than OSD-0"
            );
        }
    }

    #[test]
    fn bp_convergence_skips_osd() {
        let h = small_h();
        let mut dec = BpOsdDecoder::new(&h, &[0.05; 6], BpConfig::default(), OsdConfig::default());
        let r = dec.decode(&BitVec::zeros(3));
        assert!(r.bp_converged);
        assert_eq!(r.osd_candidates, 0);
        assert!(r.error_hat.is_zero());
    }

    #[test]
    fn corrects_weight_two_errors_on_bb72() {
        let code = bb::bb72();
        let hz = code.hz();
        let n = hz.cols();
        let mut dec = BpOsdDecoder::new(
            hz,
            &vec![0.01; n],
            BpConfig {
                max_iters: 30,
                ..BpConfig::default()
            },
            OsdConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let e = BitVec::from_indices(n, &[a, b]);
            let s = hz.mul_vec(&e);
            let r = dec.decode(&s);
            assert!(r.solved);
            assert_eq!(hz.mul_vec(&r.error_hat), s);
            // The correction must be equivalent to the true error: the
            // residual acts trivially on the logical space.
            let residual = &r.error_hat ^ &e;
            assert!(
                !code.is_x_logical_error(&residual),
                "weight-2 error caused a logical failure"
            );
        }
    }

    #[test]
    fn inconsistent_syndrome_reported() {
        // Zero matrix: only the zero syndrome is consistent.
        let h = BitMatrix::zeros(2, 3);
        let s = BitVec::from_indices(2, &[0]);
        let (_, solved, _) = osd_postprocess(&h, &s, &[0.0; 3], &[0.1; 3], OsdConfig::default());
        assert!(!solved);
    }
}
