//! Ordered-statistics decoding (OSD) post-processing for BP.
//!
//! This is the **baseline the BP-SF paper competes against**: when BP fails
//! to converge, OSD re-solves the syndrome equation exactly by Gaussian
//! elimination over a reliability-ordered information set (Panteleev &
//! Kalachev 2021; Roffe et al. 2020). Two search strategies are provided:
//!
//! * **OSD-0** — the non-pivot ("residual") bits are all zero,
//! * **OSD-CS (combination sweep) of order λ** — additionally tries every
//!   weight-1 residual pattern, plus every weight-2 pattern within the λ
//!   least reliable residual positions, keeping the best-scoring solution.
//!
//! The Gaussian elimination step costs `O(N³)` in the worst case — the
//! expense BP-SF eliminates (see the `osd_elimination` bench, which
//! writes `BENCH_osd_elimination.json`). The hot path here runs on the
//! word-parallel [`OrderedEliminator`] workspace: the reliability
//! permutation is applied once up front, the syndrome rides along as an
//! appended column, and every sweep candidate is assembled incrementally
//! as `base ⊕ delta_a ⊕ delta_b`. The pre-workspace per-bit
//! implementation is retained as [`osd_postprocess_reference`]; the two
//! are bit-identical (same solutions, same candidate counts, same
//! tie-breaking), pinned by the equivalence property suite.
//!
//! # Examples
//!
//! ```
//! use qldpc_bp::BpConfig;
//! use qldpc_osd::{BpOsdDecoder, OsdConfig};
//! use qldpc_gf2::{BitVec, SparseBitMatrix};
//!
//! let h = SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]]);
//! let mut dec = BpOsdDecoder::new(&h, &[0.1, 0.1, 0.1], BpConfig::default(), OsdConfig::default());
//! let e = BitVec::from_indices(3, &[0]);
//! let r = dec.decode(&h.mul_vec(&e));
//! assert_eq!(r.error_hat, e);
//! ```

use qldpc_bp::{BatchMinSumDecoder, BpConfig, BpResult, MinSumDecoder, Schedule};
pub use qldpc_decoder_api::{DecodeOutcome, DecodeTelemetry, SyndromeDecoder};
use qldpc_gf2::{BitMatrix, BitVec, OrderedEliminator, SparseBitMatrix};

/// How OSD scores candidate solutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OsdSelection {
    /// Choose the candidate with the smallest Hamming weight.
    MinWeight,
    /// Choose the candidate with the smallest soft cost
    /// `Σ_{i ∈ supp(e)} ln((1−p_i)/p_i)` under the channel priors —
    /// the most probable error. This is the default.
    #[default]
    SoftWeight,
}

/// OSD search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsdConfig {
    /// Combination-sweep order λ. `0` selects plain OSD-0. The paper's
    /// baseline is order 10 ("OSD10").
    pub order: usize,
    /// Candidate scoring rule.
    pub selection: OsdSelection,
}

impl Default for OsdConfig {
    fn default() -> Self {
        Self {
            order: 10,
            selection: OsdSelection::SoftWeight,
        }
    }
}

/// Outcome of a BP+OSD decode.
#[derive(Debug, Clone)]
pub struct OsdResult {
    /// The estimated error. Always satisfies the syndrome when
    /// [`OsdResult::solved`] is true.
    pub error_hat: BitVec,
    /// Whether a syndrome-satisfying solution was produced (BP converged,
    /// or the OSD linear system was consistent — it always is when the
    /// syndrome was produced by a real error).
    pub solved: bool,
    /// Whether plain BP already converged (OSD skipped).
    pub bp_converged: bool,
    /// BP iterations executed.
    pub bp_iterations: usize,
    /// Number of OSD candidate patterns scored (0 when OSD was skipped).
    pub osd_candidates: usize,
}

/// BP decoding with OSD fallback (the paper's "BPxxxx-OSDyy" baseline).
///
/// Owns a [`MinSumDecoder`] and a persistent [`OrderedEliminator`]
/// workspace, so failed shots re-use the same elimination scratch
/// instead of cloning the check matrix; the per-column soft cost is
/// precomputed once at construction. Clone to use from several threads.
#[derive(Debug, Clone)]
pub struct BpOsdDecoder {
    bp: MinSumDecoder,
    /// Batch engine for [`SyndromeDecoder::decode_batch`], built lazily
    /// from the scalar decoder on the first batched call.
    bp_batch: Option<BatchMinSumDecoder>,
    elim: OrderedEliminator,
    cost: Vec<f64>,
    config: OsdConfig,
}

impl BpOsdDecoder {
    /// Builds a BP+OSD decoder.
    ///
    /// # Panics
    ///
    /// Panics if `priors.len() != h.cols()`.
    pub fn new(h: &SparseBitMatrix, priors: &[f64], bp: BpConfig, config: OsdConfig) -> Self {
        assert_eq!(priors.len(), h.cols(), "one prior per variable required");
        Self {
            bp: MinSumDecoder::new(h, priors, bp),
            bp_batch: None,
            elim: OrderedEliminator::new(&h.to_dense()),
            cost: soft_costs(priors),
            config,
        }
    }

    /// The inner BP decoder.
    pub fn bp(&self) -> &MinSumDecoder {
        &self.bp
    }

    /// The OSD configuration.
    pub fn config(&self) -> &OsdConfig {
        &self.config
    }

    /// Decodes a syndrome: BP first, OSD on BP failure.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length differs from the number of checks.
    pub fn decode(&mut self, syndrome: &BitVec) -> OsdResult {
        let bp_result = self.bp.decode(syndrome);
        self.finish(syndrome, bp_result)
    }

    /// The post-BP half of [`Self::decode`], shared with the batched
    /// path: returns the BP answer on convergence, otherwise runs the
    /// OSD stage on the persistent workspace.
    fn finish(&mut self, syndrome: &BitVec, bp_result: BpResult) -> OsdResult {
        if bp_result.converged {
            return OsdResult {
                error_hat: bp_result.error_hat,
                solved: true,
                bp_converged: true,
                bp_iterations: bp_result.iterations,
                osd_candidates: 0,
            };
        }
        let (error_hat, solved, candidates) = osd_postprocess_with(
            &mut self.elim,
            syndrome,
            &bp_result.posteriors,
            &self.cost,
            self.config,
        );
        OsdResult {
            error_hat,
            solved,
            bp_converged: false,
            bp_iterations: bp_result.iterations,
            osd_candidates: candidates,
        }
    }
}

/// The per-column soft cost `ln((1−p)/p)` (floored at a tiny positive
/// value so zero-cost columns cannot make every solution free) used by
/// [`OsdSelection::SoftWeight`] scoring.
fn soft_costs(priors: &[f64]) -> Vec<f64> {
    priors
        .iter()
        .map(|&p| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            ((1.0 - p) / p).ln().max(1e-9)
        })
        .collect()
}

/// The reliability permutation: columns by *descending probability of
/// error*, i.e. ascending posterior LLR, so the most suspicious bits
/// land in the information set (pivots).
fn reliability_order(posteriors: &[f64]) -> Vec<usize> {
    // Monotone total-order key for finite floats; the index tiebreak
    // reproduces exactly the permutation a stable ascending float sort
    // yields, at integer-sort speed (this runs once per failed shot).
    fn key(f: f64) -> u64 {
        let b = f.to_bits();
        if b >> 63 == 1 {
            !b
        } else {
            b ^ (1u64 << 63)
        }
    }
    let mut order: Vec<usize> = (0..posteriors.len()).collect();
    order.sort_unstable_by_key(|&i| (key(posteriors[i]), i));
    order
}

/// Scores a candidate given as a word stream under non-uniform soft
/// costs, bit-identically to scoring the materialized vector: folds
/// `cost` over the set bits in the same ascending order (and from the
/// same `0.0`) as `iter_ones().map(..).sum()`.
#[inline]
fn soft_score_stream(cost: &[f64], words: impl Iterator<Item = u64>) -> f64 {
    let mut acc = 0.0f64;
    for (wi, word) in words.enumerate() {
        let mut bits = word;
        while bits != 0 {
            acc += cost[wi * 64 + bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
    }
    acc
}

/// XOR-popcount over two or three equal-length word slices — the weight
/// of `base ⊕ delta_a (⊕ delta_b)` restricted to the pivot rows, per
/// the [`OrderedEliminator::residual_column`] identity.
#[inline]
fn xor_weight(a: &[u64], b: &[u64], c: Option<&[u64]>) -> usize {
    match c {
        None => a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x ^ y).count_ones() as usize)
            .sum(),
        Some(c) => a
            .iter()
            .zip(b)
            .zip(c)
            .map(|((&x, &y), &z)| (x ^ y ^ z).count_ones() as usize)
            .sum(),
    }
}

/// Runs the OSD stage alone, given BP soft output.
///
/// Returns `(error, solved, candidates_scored)`. `solved` is false only
/// when the linear system `H·e = s` is inconsistent, which cannot happen
/// for syndromes generated by actual errors.
///
/// Builds a fresh [`OrderedEliminator`] workspace per call and runs the
/// fast path ([`osd_postprocess_with`]); [`BpOsdDecoder`] keeps a
/// persistent workspace instead.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn osd_postprocess(
    h: &BitMatrix,
    syndrome: &BitVec,
    posteriors: &[f64],
    priors: &[f64],
    config: OsdConfig,
) -> (BitVec, bool, usize) {
    assert_eq!(priors.len(), h.cols(), "one prior per column required");
    let mut elim = OrderedEliminator::new(h);
    osd_postprocess_with(&mut elim, syndrome, posteriors, &soft_costs(priors), config)
}

/// The OSD stage on a reusable [`OrderedEliminator`] workspace — the
/// decode hot path.
///
/// One ordered elimination of the augmented system, then a combination
/// sweep in which no candidate is ever materialized: when the score
/// depends only on solution weight (`MinWeight`, or `SoftWeight` with
/// uniform costs) candidates are scored by rank-bit column popcounts,
/// and otherwise each is streamed as `base ⊕ delta_a ⊕ delta_b` word by
/// word. Candidate enumeration order, scoring arithmetic and
/// tie-breaking are identical to [`osd_postprocess_reference`], so
/// decode outcomes are bit-equal.
///
/// `cost` is the precomputed per-column soft cost (see
/// [`OsdSelection::SoftWeight`]); it is ignored under
/// [`OsdSelection::MinWeight`].
///
/// # Panics
///
/// Panics if `syndrome`, `posteriors` or `cost` disagree with the
/// workspace dimensions.
pub fn osd_postprocess_with(
    elim: &mut OrderedEliminator,
    syndrome: &BitVec,
    posteriors: &[f64],
    cost: &[f64],
    config: OsdConfig,
) -> (BitVec, bool, usize) {
    let n = elim.cols();
    assert_eq!(posteriors.len(), n, "one posterior per column required");
    assert_eq!(cost.len(), n, "one cost per column required");

    // When the score depends only on the candidate's *weight* —
    // `MinWeight` always, `SoftWeight` whenever every cost is bit-equal
    // (uniform priors: every code-capacity experiment) — the sweep
    // never needs candidate bits at all: by the
    // [`OrderedEliminator::residual_column`] identity,
    // `weight(base ⊕ delta_a ⊕ delta_b)` is a popcount over rank-bit
    // RREF columns plus the pattern size. Delta materialization is
    // skipped entirely and only the winner is assembled. For uniform
    // soft costs `sum_table[k]` holds the exact serial k-term fold, so
    // scores stay bit-identical to summing the materialized vector.
    let sum_table = match config.selection {
        OsdSelection::MinWeight => None,
        OsdSelection::SoftWeight if cost.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()) => {
            let c = cost.first().copied().unwrap_or(0.0);
            let mut table = Vec::with_capacity(n + 1);
            let mut acc = 0.0f64;
            table.push(acc);
            for _ in 0..n {
                acc += c;
                table.push(acc);
            }
            Some(table)
        }
        _ => return osd_softweight_stream(elim, syndrome, posteriors, cost, config),
    };
    let score_of = |k: usize| match &sum_table {
        None => k as f64,
        Some(table) => table[k],
    };

    let order = reliability_order(posteriors);
    elim.eliminate_without_deltas(syndrome, &order);
    if !elim.is_consistent() {
        return (BitVec::zeros(n), false, 0);
    }

    // OSD-0 candidate: the base solution scatters the rhs column's
    // bits, so its weight is that column's popcount.
    let bm = elim.rhs_column();
    let mut best = Pattern::Base;
    let mut best_score = score_of(bm.iter().map(|&w| w.count_ones() as usize).sum());
    let mut candidates = 1usize;

    if config.order > 0 {
        let t = elim.residual_cols().len();
        // All weight-1 residual patterns.
        for j in 0..t {
            let sc = score_of(xor_weight(bm, elim.residual_column(j), None) + 1);
            candidates += 1;
            if sc < best_score {
                best_score = sc;
                best = Pattern::One(j);
            }
        }
        // Weight-2 patterns within the first λ residual positions (the
        // least reliable ones, since `residual_cols` preserves the
        // reliability order).
        let lambda = config.order.min(t);
        for a in 0..lambda {
            let ca = elim.residual_column(a);
            for b in (a + 1)..lambda {
                let sc = score_of(xor_weight(bm, ca, Some(elim.residual_column(b))) + 2);
                candidates += 1;
                if sc < best_score {
                    best_score = sc;
                    best = Pattern::Two(a, b);
                }
            }
        }
    }

    let mut e = elim.base_solution().clone();
    match best {
        Pattern::Base => {}
        Pattern::One(j) => elim.xor_delta_into(j, &mut e),
        Pattern::Two(a, b) => {
            elim.xor_delta_into(a, &mut e);
            elim.xor_delta_into(b, &mut e);
        }
    }
    (e, true, candidates)
}

/// Winning residual pattern of a combination sweep.
#[derive(Clone, Copy)]
enum Pattern {
    Base,
    One(usize),
    Two(usize, usize),
}

/// The soft-weight sweep under *non-uniform* costs, where scores are
/// order-sensitive f64 folds and candidates must be scored bit by bit:
/// each is streamed as `base ⊕ delta_a ⊕ delta_b` word by word (the
/// same ascending bit order and serial `0.0 + …` fold the naive
/// `iter_ones().sum()` performs, so scores are bit-identical), and only
/// the winning pattern is assembled at the end.
fn osd_softweight_stream(
    elim: &mut OrderedEliminator,
    syndrome: &BitVec,
    posteriors: &[f64],
    cost: &[f64],
    config: OsdConfig,
) -> (BitVec, bool, usize) {
    let n = elim.cols();
    let order = reliability_order(posteriors);
    elim.eliminate(syndrome, &order);
    if !elim.is_consistent() {
        return (BitVec::zeros(n), false, 0);
    }

    // OSD-0 candidate.
    let base = elim.base_solution().as_words();
    let mut best = Pattern::Base;
    let mut best_score = soft_score_stream(cost, base.iter().copied());
    let mut candidates = 1usize;

    if config.order > 0 {
        let t = elim.residual_cols().len();
        // All weight-1 residual patterns.
        for j in 0..t {
            let d = elim.delta(j).as_words();
            let words = base.iter().zip(d).map(|(&x, &y)| x ^ y);
            let sc = soft_score_stream(cost, words);
            candidates += 1;
            if sc < best_score {
                best_score = sc;
                best = Pattern::One(j);
            }
        }
        // Weight-2 patterns within the first λ residual positions (the
        // least reliable ones, since `residual_cols` preserves the
        // reliability order).
        let lambda = config.order.min(t);
        for a in 0..lambda {
            let da = elim.delta(a).as_words();
            for b in (a + 1)..lambda {
                let db = elim.delta(b).as_words();
                let words = base.iter().zip(da).zip(db).map(|((&x, &y), &z)| x ^ y ^ z);
                let sc = soft_score_stream(cost, words);
                candidates += 1;
                if sc < best_score {
                    best_score = sc;
                    best = Pattern::Two(a, b);
                }
            }
        }
    }

    let mut e = elim.base_solution().clone();
    match best {
        Pattern::Base => {}
        Pattern::One(j) => e.xor_assign(elim.delta(j)),
        Pattern::Two(a, b) => {
            e.xor_assign(elim.delta(a));
            e.xor_assign(elim.delta(b));
        }
    }
    (e, true, candidates)
}

/// The pre-workspace OSD stage: per-bit [`OrderedEchelon`] elimination
/// (cloning `h`) and a from-scratch solve per sweep candidate.
///
/// [`OrderedEchelon`]: qldpc_gf2::OrderedEchelon
///
/// Retained verbatim as the correctness reference for the fast path —
/// the equivalence property suite pins `osd_postprocess` against this
/// function bit for bit, and the `osd_elimination` bench reports the
/// speedup between the two.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn osd_postprocess_reference(
    h: &BitMatrix,
    syndrome: &BitVec,
    posteriors: &[f64],
    priors: &[f64],
    config: OsdConfig,
) -> (BitVec, bool, usize) {
    assert_eq!(
        posteriors.len(),
        h.cols(),
        "one posterior per column required"
    );
    assert_eq!(priors.len(), h.cols(), "one prior per column required");
    let n = h.cols();

    let order = reliability_order(posteriors);
    let ech = h.ordered_echelon(syndrome, &order);
    if !ech.is_consistent() {
        return (BitVec::zeros(n), false, 0);
    }

    let cost = soft_costs(priors);
    let score = |e: &BitVec| -> f64 {
        match config.selection {
            OsdSelection::MinWeight => e.weight() as f64,
            OsdSelection::SoftWeight => e.iter_ones().map(|i| cost[i]).sum(),
        }
    };

    // OSD-0 candidate.
    let mut best = ech.solve_for_pattern(&[]);
    let mut best_score = score(&best);
    let mut candidates = 1usize;

    if config.order > 0 {
        let t = ech.residual_cols().len();
        // All weight-1 residual patterns.
        for j in 0..t {
            let e = ech.solve_for_pattern(&[j]);
            let sc = score(&e);
            candidates += 1;
            if sc < best_score {
                best_score = sc;
                best = e;
            }
        }
        // Weight-2 patterns within the first λ residual positions.
        let lambda = config.order.min(t);
        for a in 0..lambda {
            for b in (a + 1)..lambda {
                let e = ech.solve_for_pattern(&[a, b]);
                let sc = score(&e);
                candidates += 1;
                if sc < best_score {
                    best_score = sc;
                    best = e;
                }
            }
        }
    }
    (best, true, candidates)
}

/// Maps the OSD result onto the decoder-API outcome — shared by the
/// scalar and batched entry points so they cannot drift apart.
fn outcome_from(r: OsdResult) -> DecodeOutcome {
    let mut telemetry = DecodeTelemetry::bp(r.bp_iterations, r.bp_converged);
    telemetry.osd_invocations = u64::from(!r.bp_converged);
    telemetry.osd_candidates = r.osd_candidates as u64;
    DecodeOutcome {
        error_hat: r.error_hat,
        solved: r.solved,
        serial_iterations: r.bp_iterations,
        critical_iterations: r.bp_iterations,
        postprocessed: !r.bp_converged,
        telemetry,
    }
}

impl SyndromeDecoder for BpOsdDecoder {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        outcome_from(self.decode(syndrome))
    }

    /// Overrides the default per-shot loop: the BP stage runs through
    /// the shot-interleaved batch kernel (bit-identical per lane to the
    /// scalar decoder), and only the shots BP failed on reach the serial
    /// OSD stage, in input order. Outcomes equal a sequential
    /// [`BpOsdDecoder::decode`] loop exactly.
    fn decode_batch(&mut self, syndromes: &[BitVec]) -> Vec<DecodeOutcome> {
        if syndromes.len() < 2 {
            return syndromes.iter().map(|s| self.decode_syndrome(s)).collect();
        }
        if self.bp_batch.is_none() {
            self.bp_batch = Some(BatchMinSumDecoder::from_scalar(&self.bp));
        }
        let bp_results = self
            .bp_batch
            .as_mut()
            .expect("engine built above")
            .decode_batch_results(syndromes);
        bp_results
            .into_iter()
            .zip(syndromes)
            .map(|(bp_result, s)| outcome_from(self.finish(s, bp_result)))
            .collect()
    }

    /// `"BP{bp_iters}-OSD{order}"` (with a `Layered` prefix under the
    /// layered schedule) — the paper's baseline names.
    fn label(&self) -> String {
        let bp = self.bp.config();
        let prefix = match bp.schedule {
            Schedule::Flooding => "",
            Schedule::Layered => "Layered",
        };
        format!("{prefix}BP{}-OSD{}", bp.max_iters, self.config.order)
    }

    fn family(&self) -> qldpc_decoder_api::DecoderFamily {
        qldpc_decoder_api::DecoderFamily::BpOsd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_codes::bb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_h() -> SparseBitMatrix {
        SparseBitMatrix::from_row_indices(3, 6, &[vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0]])
    }

    #[test]
    fn osd_solution_satisfies_syndrome() {
        let h = small_h();
        let mut dec = BpOsdDecoder::new(
            &h,
            &[0.1; 6],
            BpConfig {
                max_iters: 2,
                ..BpConfig::default()
            },
            OsdConfig::default(),
        );
        for mask in 0..8u32 {
            let s = BitVec::from_bools(&[(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0]);
            let r = dec.decode(&s);
            assert!(r.solved);
            assert_eq!(
                h.mul_vec(&r.error_hat),
                s,
                "syndrome {mask:#b} not satisfied"
            );
        }
    }

    #[test]
    fn osd0_vs_cs_candidate_counts() {
        let h = small_h();
        let s = BitVec::from_indices(3, &[0, 1]);
        let posteriors = vec![0.0; 6];
        let priors = vec![0.1; 6];
        let (_, solved0, c0) = osd_postprocess(
            &h.to_dense(),
            &s,
            &posteriors,
            &priors,
            OsdConfig {
                order: 0,
                selection: OsdSelection::MinWeight,
            },
        );
        let (_, solved10, c10) = osd_postprocess(
            &h.to_dense(),
            &s,
            &posteriors,
            &priors,
            OsdConfig {
                order: 10,
                selection: OsdSelection::MinWeight,
            },
        );
        assert!(solved0 && solved10);
        assert_eq!(c0, 1);
        // rank = 3, so residual size t = 3: 1 + 3 weight-1 + C(3,2) weight-2.
        assert_eq!(c10, 1 + 3 + 3);
    }

    #[test]
    fn osd_cs_never_worse_than_osd0() {
        let code = bb::bb72();
        let hz = code.hz();
        let n = hz.cols();
        let priors = vec![0.03; n];
        let mut rng = StdRng::seed_from_u64(7);
        let dense = hz.to_dense();
        for _ in 0..10 {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(0.03) {
                    e.set(i, true);
                }
            }
            let s = hz.mul_vec(&e);
            // Uninformative posteriors so OSD does the heavy lifting.
            let posteriors: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
            let (e0, _, _) = osd_postprocess(
                &dense,
                &s,
                &posteriors,
                &priors,
                OsdConfig {
                    order: 0,
                    selection: OsdSelection::MinWeight,
                },
            );
            let (ecs, _, _) = osd_postprocess(
                &dense,
                &s,
                &posteriors,
                &priors,
                OsdConfig {
                    order: 10,
                    selection: OsdSelection::MinWeight,
                },
            );
            assert_eq!(dense.mul_vec(&e0), s);
            assert_eq!(dense.mul_vec(&ecs), s);
            assert!(
                ecs.weight() <= e0.weight(),
                "CS must not be heavier than OSD-0"
            );
        }
    }

    #[test]
    fn bp_convergence_skips_osd() {
        let h = small_h();
        let mut dec = BpOsdDecoder::new(&h, &[0.05; 6], BpConfig::default(), OsdConfig::default());
        let r = dec.decode(&BitVec::zeros(3));
        assert!(r.bp_converged);
        assert_eq!(r.osd_candidates, 0);
        assert!(r.error_hat.is_zero());
    }

    #[test]
    fn corrects_weight_two_errors_on_bb72() {
        let code = bb::bb72();
        let hz = code.hz();
        let n = hz.cols();
        let mut dec = BpOsdDecoder::new(
            hz,
            &vec![0.01; n],
            BpConfig {
                max_iters: 30,
                ..BpConfig::default()
            },
            OsdConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let e = BitVec::from_indices(n, &[a, b]);
            let s = hz.mul_vec(&e);
            let r = dec.decode(&s);
            assert!(r.solved);
            assert_eq!(hz.mul_vec(&r.error_hat), s);
            // The correction must be equivalent to the true error: the
            // residual acts trivially on the logical space.
            let residual = &r.error_hat ^ &e;
            assert!(
                !code.is_x_logical_error(&residual),
                "weight-2 error caused a logical failure"
            );
        }
    }

    #[test]
    fn inconsistent_syndrome_reported() {
        // Zero matrix: only the zero syndrome is consistent.
        let h = BitMatrix::zeros(2, 3);
        let s = BitVec::from_indices(2, &[0]);
        let (_, solved, _) = osd_postprocess(&h, &s, &[0.0; 3], &[0.1; 3], OsdConfig::default());
        assert!(!solved);
    }
}
