//! Pins the word-parallel OSD fast path to the retained naive
//! reference, bit for bit.
//!
//! [`qldpc_osd::osd_postprocess`] runs the incremental
//! `OrderedEliminator` sweep; [`qldpc_osd::osd_postprocess_reference`]
//! is the pre-optimization per-bit implementation kept for exactly this
//! cross-check. Both the returned correction and the candidate count
//! must agree on every input — the fast path is an implementation
//! change, not a behavioural one.

use proptest::prelude::*;
use qldpc_gf2::{BitMatrix, BitVec};
use qldpc_osd::{osd_postprocess, osd_postprocess_reference, OsdConfig, OsdSelection};

fn bit_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = BitMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, c), r).prop_map(
            move |data| {
                let mut m = BitMatrix::zeros(data.len(), c);
                for (i, row) in data.iter().enumerate() {
                    for (j, &b) in row.iter().enumerate() {
                        if b {
                            m.set(i, j, true);
                        }
                    }
                }
                m
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_postprocess_matches_reference(
        inputs in
            bit_matrix(2..12, 2..40).prop_flat_map(|m| {
                let c = m.cols();
                (
                    Just(m),
                    proptest::collection::vec(proptest::bool::ANY, c),
                    (
                        proptest::collection::vec(0.0f64..1.0, c),
                        proptest::collection::vec(1e-4f64..0.4, c),
                    ),
                    (0usize..12, proptest::bool::ANY, proptest::bool::ANY),
                )
            })
    ) {
        let (m, e_bits, (posteriors, mut priors), (order, min_weight, uniform)) = inputs;
        if uniform {
            // Uniform priors take the fast path's popcount scoring table.
            let p0 = priors[0];
            priors.fill(p0);
        }
        // Syndromes in the image exercise the full candidate sweep;
        // flipping one check bit on top exercises the inconsistent and
        // rank-deficient branches too.
        let e = BitVec::from_bools(&e_bits);
        let mut syndrome = m.mul_vec(&e);
        if order % 2 == 1 {
            let flip = order % syndrome.len();
            syndrome.set(flip, !syndrome.get(flip));
        }
        let config = OsdConfig {
            order,
            selection: if min_weight {
                OsdSelection::MinWeight
            } else {
                OsdSelection::SoftWeight
            },
        };
        let fast = osd_postprocess(&m, &syndrome, &posteriors, &priors, config);
        let reference = osd_postprocess_reference(&m, &syndrome, &posteriors, &priors, config);
        prop_assert_eq!(fast, reference);
    }
}
