//! Property tests for the circuit-level substrate.

use proptest::prelude::*;
use qldpc_circuit::{DemSampler, MemoryExperiment, NoiseModel};
use qldpc_codes::classical::ClassicalCode;
use qldpc_codes::{hgp, CssCode};
use rand::SeedableRng;

/// Small random CSS codes: hypergraph products of repetition codes.
fn small_code() -> impl Strategy<Value = CssCode> {
    (2usize..4, 2usize..4).prop_map(|(a, b)| {
        hgp::hypergraph_product(
            "prop-code",
            &ClassicalCode::repetition(a),
            &ClassicalCode::repetition(b),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DEM structural invariants hold for random codes, rounds and rates:
    /// detector count = checks × (rounds + 1), no undetectable mechanisms,
    /// sane priors, and sampled shots consistent with the matrices.
    #[test]
    fn dem_invariants(code in small_code(), rounds in 1usize..4, p in 1e-4f64..1e-2) {
        let noise = NoiseModel::uniform_depolarizing(p);
        let exp = MemoryExperiment::memory_z(&code, rounds, &noise);
        let dem = exp.detector_error_model();
        prop_assert_eq!(dem.num_detectors(), code.hz().rows() * (rounds + 1));
        prop_assert_eq!(dem.num_observables(), code.k());
        prop_assert_eq!(dem.num_undetectable(), 0);
        for &prior in dem.priors() {
            prop_assert!(prior > 0.0 && prior < 0.5);
        }
        let sampler = DemSampler::new(&dem);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let shot = sampler.sample(&mut rng);
            prop_assert_eq!(dem.check_matrix().mul_vec(&shot.fault), shot.syndrome);
            prop_assert_eq!(dem.observable_matrix().mul_vec(&shot.fault), shot.obs_flips);
        }
    }

    /// Memory-X and memory-Z experiments of a symmetric construction have
    /// mirrored shapes.
    #[test]
    fn memory_bases_mirror(n in 2usize..4, rounds in 1usize..3) {
        let rep = ClassicalCode::cyclic_repetition(n);
        let code = hgp::hypergraph_product("toric", &rep, &rep);
        let noise = NoiseModel::uniform_depolarizing(1e-3);
        let z = MemoryExperiment::memory_z(&code, rounds, &noise);
        let x = MemoryExperiment::memory_x(&code, rounds, &noise);
        prop_assert_eq!(z.num_observables(), x.num_observables());
        prop_assert_eq!(
            z.circuit().num_measurements(),
            x.circuit().num_measurements()
        );
    }

    /// Scaling the physical rate scales every mechanism prior in the same
    /// direction (monotonicity of the noise model).
    #[test]
    fn priors_monotone_in_p(rounds in 1usize..3) {
        let rep = ClassicalCode::repetition(3);
        let code = hgp::hypergraph_product("surf", &rep, &rep);
        let lo = MemoryExperiment::memory_z(&code, rounds, &NoiseModel::uniform_depolarizing(1e-4))
            .detector_error_model();
        let hi = MemoryExperiment::memory_z(&code, rounds, &NoiseModel::uniform_depolarizing(1e-3))
            .detector_error_model();
        prop_assert_eq!(lo.num_mechanisms(), hi.num_mechanisms());
        let lo_sum: f64 = lo.priors().iter().sum();
        let hi_sum: f64 = hi.priors().iter().sum();
        prop_assert!(hi_sum > lo_sum);
    }
}
