//! Clifford circuits with explicit noise locations.

use qldpc_gf2::BitVec;
use std::fmt;

/// A single-qubit Pauli operator (the identity is never stored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Bit-flip.
    X,
    /// Phase-flip.
    Z,
    /// Both.
    Y,
}

impl Pauli {
    /// Whether the Pauli has an X component (X or Y).
    #[inline]
    pub fn has_x(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// Whether the Pauli has a Z component (Z or Y).
    #[inline]
    pub fn has_z(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }
}

/// A stochastic noise channel attached to a circuit location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseChannel {
    /// Single-qubit depolarizing: X, Y, Z each with probability `p/3`.
    Depolarize1(u32, f64),
    /// Two-qubit depolarizing: each of the 15 nontrivial two-qubit Paulis
    /// with probability `p/15`.
    Depolarize2(u32, u32, f64),
    /// X error with probability `p` (models reset errors and, when placed
    /// directly before a Z-basis measurement, measurement flips).
    XError(u32, f64),
}

/// A circuit operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Reset the qubit to `|0⟩`, discarding any prior error on it.
    Reset(u32),
    /// Hadamard gate.
    H(u32),
    /// Controlled-NOT with `(control, target)`.
    Cnot(u32, u32),
    /// Destructive Z-basis measurement; outcomes are indexed in program
    /// order starting from 0.
    Measure(u32),
    /// A stochastic fault location.
    Noise(NoiseChannel),
}

/// A Clifford circuit: a flat list of [`Op`]s over `num_qubits` qubits.
///
/// # Examples
///
/// ```
/// use qldpc_circuit::{Circuit, Pauli};
///
/// let mut c = Circuit::new(2);
/// c.reset(0);
/// c.reset(1);
/// c.cnot(0, 1);
/// c.measure(1);
/// // An X fault on qubit 0 before the CNOT flips the measurement.
/// let flips = c.propagate_fault(1, 0, Pauli::X);
/// assert_eq!(flips.iter_ones().collect::<Vec<_>>(), vec![0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Op>,
    num_measurements: usize,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            ops: Vec::new(),
            num_measurements: 0,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of measurement operations appended so far.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// The operation list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total number of gate operations (excluding noise locations).
    pub fn num_gates(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op, Op::Noise(_)))
            .count()
    }

    /// Number of stochastic fault locations.
    pub fn num_noise_locations(&self) -> usize {
        self.ops.len() - self.num_gates()
    }

    fn check_qubit(&self, q: u32) {
        assert!((q as usize) < self.num_qubits, "qubit {q} out of range");
    }

    /// Appends a reset.
    pub fn reset(&mut self, q: u32) -> &mut Self {
        self.check_qubit(q);
        self.ops.push(Op::Reset(q));
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.check_qubit(q);
        self.ops.push(Op::H(q));
        self
    }

    /// Appends a CNOT.
    ///
    /// # Panics
    ///
    /// Panics if `control == target` or either is out of range.
    pub fn cnot(&mut self, control: u32, target: u32) -> &mut Self {
        self.check_qubit(control);
        self.check_qubit(target);
        assert_ne!(control, target, "CNOT control and target must differ");
        self.ops.push(Op::Cnot(control, target));
        self
    }

    /// Appends a Z-basis measurement and returns its measurement index.
    pub fn measure(&mut self, q: u32) -> usize {
        self.check_qubit(q);
        self.ops.push(Op::Measure(q));
        self.num_measurements += 1;
        self.num_measurements - 1
    }

    /// Appends a noise location.
    pub fn noise(&mut self, channel: NoiseChannel) -> &mut Self {
        match channel {
            NoiseChannel::Depolarize1(q, _) | NoiseChannel::XError(q, _) => self.check_qubit(q),
            NoiseChannel::Depolarize2(a, b, _) => {
                self.check_qubit(a);
                self.check_qubit(b);
                assert_ne!(a, b, "two-qubit noise needs distinct qubits");
            }
        }
        self.ops.push(Op::Noise(channel));
        self
    }

    /// Forward-propagates a Pauli fault injected *just before* the op at
    /// `position`, returning the set of measurement outcomes it flips.
    ///
    /// This is the slow reference implementation used to cross-validate the
    /// backward DEM sweep; it costs `O(ops)` per call.
    ///
    /// # Panics
    ///
    /// Panics if `position > ops().len()` or the qubit is out of range.
    pub fn propagate_fault(&self, position: usize, qubit: u32, pauli: Pauli) -> BitVec {
        assert!(position <= self.ops.len(), "position out of range");
        self.check_qubit(qubit);
        let mut fx = vec![false; self.num_qubits];
        let mut fz = vec![false; self.num_qubits];
        fx[qubit as usize] = pauli.has_x();
        fz[qubit as usize] = pauli.has_z();
        let mut flips = BitVec::zeros(self.num_measurements);
        let mut meas_idx = self.ops[..position]
            .iter()
            .filter(|op| matches!(op, Op::Measure(_)))
            .count();
        for op in &self.ops[position..] {
            match *op {
                Op::Reset(q) => {
                    fx[q as usize] = false;
                    fz[q as usize] = false;
                }
                Op::H(q) => fx.swap_with_slice_at(&mut fz, q as usize),
                Op::Cnot(c, t) => {
                    // X propagates control→target, Z propagates target→control.
                    fx[t as usize] ^= fx[c as usize];
                    fz[c as usize] ^= fz[t as usize];
                }
                Op::Measure(q) => {
                    if fx[q as usize] {
                        flips.set(meas_idx, true);
                    }
                    meas_idx += 1;
                }
                Op::Noise(_) => {}
            }
        }
        flips
    }
}

/// Tiny helper: swap one element between two slices (H-gate frame swap).
trait SwapAt {
    fn swap_with_slice_at(&mut self, other: &mut Self, idx: usize);
}

impl SwapAt for Vec<bool> {
    fn swap_with_slice_at(&mut self, other: &mut Self, idx: usize) {
        std::mem::swap(&mut self[idx], &mut other[idx]);
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit(qubits={}, gates={}, noise={}, measurements={})",
            self.num_qubits,
            self.num_gates(),
            self.num_noise_locations(),
            self.num_measurements
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_fault_flips_downstream_measurement() {
        let mut c = Circuit::new(1);
        c.reset(0);
        c.measure(0);
        let flips = c.propagate_fault(1, 0, Pauli::X);
        assert!(flips.get(0));
        // Z fault does not flip a Z-basis measurement.
        let flips = c.propagate_fault(1, 0, Pauli::Z);
        assert!(!flips.get(0));
        // Y fault does.
        let flips = c.propagate_fault(1, 0, Pauli::Y);
        assert!(flips.get(0));
    }

    #[test]
    fn reset_absorbs_faults() {
        let mut c = Circuit::new(1);
        c.reset(0);
        c.reset(0);
        c.measure(0);
        // Fault before the second reset is erased.
        let flips = c.propagate_fault(1, 0, Pauli::X);
        assert!(flips.is_zero());
    }

    #[test]
    fn cnot_propagates_x_forward_z_backward() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.measure(0);
        c.measure(1);
        // X on control spreads to target.
        let flips = c.propagate_fault(0, 0, Pauli::X);
        assert_eq!(flips.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        // X on target stays on target.
        let flips = c.propagate_fault(0, 1, Pauli::X);
        assert_eq!(flips.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn hadamard_exchanges_x_and_z() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure(0);
        // Z before H becomes X, which flips the measurement.
        let flips = c.propagate_fault(0, 0, Pauli::Z);
        assert!(flips.get(0));
        // X before H becomes Z: no flip.
        let flips = c.propagate_fault(0, 0, Pauli::X);
        assert!(!flips.is_empty());
        assert!(flips.is_zero());
    }

    #[test]
    fn measurement_indices_sequential() {
        let mut c = Circuit::new(3);
        assert_eq!(c.measure(0), 0);
        assert_eq!(c.measure(1), 1);
        assert_eq!(c.measure(2), 2);
        assert_eq!(c.num_measurements(), 3);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_cnot_panics() {
        Circuit::new(2).cnot(1, 1);
    }

    #[test]
    fn counts_gates_and_noise() {
        let mut c = Circuit::new(2);
        c.reset(0);
        c.noise(NoiseChannel::XError(0, 0.01));
        c.cnot(0, 1);
        c.noise(NoiseChannel::Depolarize2(0, 1, 0.01));
        c.measure(1);
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.num_noise_locations(), 2);
    }
}
