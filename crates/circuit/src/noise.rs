//! Circuit-level noise model parameters.

/// Parameters of the uniform circuit-level depolarizing noise model used by
/// the paper's evaluation: "errors are injected uniformly across gates and
/// measurements".
///
/// Each field may be set independently for ablations; the standard model
/// sets them all to the same physical error rate `p`.
///
/// # Examples
///
/// ```
/// use qldpc_circuit::NoiseModel;
///
/// let noise = NoiseModel::uniform_depolarizing(1e-3);
/// assert_eq!(noise.two_qubit_gate, 1e-3);
/// let quiet = NoiseModel::noiseless();
/// assert_eq!(quiet.measurement_flip, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after every single-qubit gate.
    pub single_qubit_gate: f64,
    /// Two-qubit depolarizing probability after every CNOT.
    pub two_qubit_gate: f64,
    /// X-error probability after every reset.
    pub reset_flip: f64,
    /// Flip probability of every measurement outcome.
    pub measurement_flip: f64,
}

impl NoiseModel {
    /// The standard model: every location fails with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn uniform_depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        Self {
            single_qubit_gate: p,
            two_qubit_gate: p,
            reset_flip: p,
            measurement_flip: p,
        }
    }

    /// A noiseless circuit (useful for determinism tests).
    pub fn noiseless() -> Self {
        Self {
            single_qubit_gate: 0.0,
            two_qubit_gate: 0.0,
            reset_flip: 0.0,
            measurement_flip: 0.0,
        }
    }

    /// Returns `true` if every probability is zero.
    pub fn is_noiseless(&self) -> bool {
        self.single_qubit_gate == 0.0
            && self.two_qubit_gate == 0.0
            && self.reset_flip == 0.0
            && self.measurement_flip == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sets_all_fields() {
        let n = NoiseModel::uniform_depolarizing(0.01);
        assert_eq!(n.single_qubit_gate, 0.01);
        assert_eq!(n.two_qubit_gate, 0.01);
        assert_eq!(n.reset_flip, 0.01);
        assert_eq!(n.measurement_flip, 0.01);
        assert!(!n.is_noiseless());
        assert!(NoiseModel::noiseless().is_noiseless());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_p_panics() {
        NoiseModel::uniform_depolarizing(1.5);
    }
}
