//! Circuit-level noise substrate for CSS memory experiments.
//!
//! The BP-SF paper uses [Stim](https://github.com/quantumlib/Stim) to build
//! syndrome-extraction circuits and extract *detector error models* (DEMs).
//! This crate rebuilds that substrate in Rust:
//!
//! * [`Circuit`] — a Clifford circuit over reset / H / CNOT / measure with
//!   explicit noise channels (depolarizing and X-flip),
//! * [`MemoryExperiment`] — the d-round CSS syndrome-extraction memory
//!   experiment for any [`qldpc_codes::CssCode`], including subsystem codes
//!   (detectors are built from gauge-product *stabilizer* combinations),
//! * [`DetectorErrorModel`] — the decoding problem: a detector × mechanism
//!   check matrix, observable matrix, and per-mechanism priors, produced by
//!   a single backward sweep over the circuit (fault signatures are linear
//!   over GF(2), so only the X/Z basis faults per qubit-time need
//!   propagating),
//! * [`DemSampler`] — fast Monte Carlo sampling of (syndrome, observable)
//!   pairs.
//!
//! # Examples
//!
//! ```
//! use qldpc_circuit::{MemoryExperiment, NoiseModel};
//! use qldpc_codes::bb;
//!
//! let code = bb::bb72();
//! let noise = NoiseModel::uniform_depolarizing(1e-3);
//! let exp = MemoryExperiment::memory_z(&code, 3, &noise);
//! let dem = exp.detector_error_model();
//! assert_eq!(dem.num_detectors(), 36 * 4); // s_z · (rounds + 1)
//! assert!(dem.num_mechanisms() > 0);
//! ```

mod circuit;
mod dem;
mod memory;
mod noise;
mod tableau;
mod window;

pub use circuit::{Circuit, NoiseChannel, Op, Pauli};
pub use dem::{DemSampler, DetectorErrorModel, Shot};
pub use memory::MemoryExperiment;
pub use noise::NoiseModel;
pub use tableau::{Outcome, StabilizerSimulator};
pub use window::window_plan;
