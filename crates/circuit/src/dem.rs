//! Detector error model extraction and sampling.

use crate::circuit::{NoiseChannel, Op};
use crate::memory::MemoryExperiment;
use qldpc_gf2::{BitVec, SparseBitMatrix};
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// The decoding problem extracted from a noisy circuit: one column per
/// *error mechanism* (a merged equivalence class of elementary faults with
/// identical detector and observable signatures), one row per detector.
///
/// This is the exact analogue of a Stim detector error model restricted to
/// one decoding basis. Decoders consume [`Self::check_matrix`],
/// [`Self::priors`], and judge corrections with
/// [`Self::is_logical_error`].
///
/// # Examples
///
/// ```
/// use qldpc_circuit::{MemoryExperiment, NoiseModel};
/// use qldpc_codes::bb;
///
/// let exp = MemoryExperiment::memory_z(&bb::bb72(), 2, &NoiseModel::uniform_depolarizing(1e-3));
/// let dem = exp.detector_error_model();
/// // Every mechanism must trip at least one detector (none undetectable).
/// assert_eq!(dem.num_undetectable(), 0);
/// ```
#[derive(Clone)]
pub struct DetectorErrorModel {
    num_detectors: usize,
    num_observables: usize,
    priors: Vec<f64>,
    /// Detector support of each mechanism (sorted).
    mech_dets: Vec<Vec<u32>>,
    /// Observable support of each mechanism (sorted).
    mech_obs: Vec<Vec<u32>>,
    check: SparseBitMatrix,
    obs: SparseBitMatrix,
    undetectable: usize,
}

impl DetectorErrorModel {
    /// Builds the DEM for a memory experiment via a single backward sweep.
    ///
    /// Fault signatures are linear over GF(2), so it suffices to propagate,
    /// for every qubit, the signature of an X and a Z fault "now"; sweeping
    /// the circuit backward updates these in `O(1)` per gate (bitset XOR),
    /// and every noise location reads off its component signatures from
    /// the current state.
    pub fn from_experiment(exp: &MemoryExperiment) -> Self {
        let circuit = exp.circuit();
        let nq = circuit.num_qubits();
        let nd = exp.num_detectors();
        let no = exp.num_observables();
        let nm = circuit.num_measurements();

        // Measurement → detector / observable incidence.
        let mut det_of_meas: Vec<Vec<u32>> = vec![Vec::new(); nm];
        for (d, meas_set) in exp.detectors().iter().enumerate() {
            for &m in meas_set {
                det_of_meas[m as usize].push(d as u32);
            }
        }
        let mut obs_of_meas: Vec<Vec<u32>> = vec![Vec::new(); nm];
        for (o, meas_set) in exp.observables().iter().enumerate() {
            for &m in meas_set {
                obs_of_meas[m as usize].push(o as u32);
            }
        }

        // Per-qubit signatures of an X / Z fault inserted at the current
        // (backward) position. sig = (detector bitset, observable bitset).
        let mut sig_x: Vec<(BitVec, BitVec)> = (0..nq)
            .map(|_| (BitVec::zeros(nd), BitVec::zeros(no)))
            .collect();
        let mut sig_z: Vec<(BitVec, BitVec)> = (0..nq)
            .map(|_| (BitVec::zeros(nd), BitVec::zeros(no)))
            .collect();

        // Accumulate merged mechanisms keyed by signature.
        let mut merged: HashMap<(BitVec, BitVec), f64> = HashMap::new();
        let mut add_component = |sig: (BitVec, BitVec), p: f64| {
            if p <= 0.0 || (sig.0.is_zero() && sig.1.is_zero()) {
                return;
            }
            let entry = merged.entry(sig).or_insert(0.0);
            // Two mechanisms with the same signature act like independent
            // coins whose XOR matters: p ← p₁(1−p₂) + p₂(1−p₁).
            *entry = *entry * (1.0 - p) + p * (1.0 - *entry);
        };

        let xor_sig = |a: &(BitVec, BitVec), b: &(BitVec, BitVec)| {
            let mut out = a.clone();
            out.0.xor_assign(&b.0);
            out.1.xor_assign(&b.1);
            out
        };

        let mut meas_cursor = nm;
        for op in circuit.ops().iter().rev() {
            match *op {
                Op::Measure(q) => {
                    meas_cursor -= 1;
                    let (dets, obs) = &mut sig_x[q as usize];
                    for &d in &det_of_meas[meas_cursor] {
                        dets.flip(d as usize);
                    }
                    for &o in &obs_of_meas[meas_cursor] {
                        obs.flip(o as usize);
                    }
                }
                Op::Reset(q) => {
                    sig_x[q as usize].0.clear();
                    sig_x[q as usize].1.clear();
                    sig_z[q as usize].0.clear();
                    sig_z[q as usize].1.clear();
                }
                Op::H(q) => {
                    let q = q as usize;
                    std::mem::swap(&mut sig_x[q], &mut sig_z[q]);
                }
                Op::Cnot(c, t) => {
                    // Forward: X_c → X_c X_t, Z_t → Z_c Z_t.
                    let sx = xor_sig(&sig_x[c as usize], &sig_x[t as usize]);
                    sig_x[c as usize] = sx;
                    let sz = xor_sig(&sig_z[t as usize], &sig_z[c as usize]);
                    sig_z[t as usize] = sz;
                }
                Op::Noise(channel) => match channel {
                    NoiseChannel::XError(q, p) => {
                        add_component(sig_x[q as usize].clone(), p);
                    }
                    NoiseChannel::Depolarize1(q, p) => {
                        let q = q as usize;
                        let each = p / 3.0;
                        add_component(sig_x[q].clone(), each);
                        add_component(sig_z[q].clone(), each);
                        add_component(xor_sig(&sig_x[q], &sig_z[q]), each);
                    }
                    NoiseChannel::Depolarize2(a, b, p) => {
                        let (a, b) = (a as usize, b as usize);
                        let each = p / 15.0;
                        // All 15 nontrivial products of {I,X,Z,Y}⊗{I,X,Z,Y}.
                        let paulis_a = [
                            None,
                            Some(sig_x[a].clone()),
                            Some(sig_z[a].clone()),
                            Some(xor_sig(&sig_x[a], &sig_z[a])),
                        ];
                        let paulis_b = [
                            None,
                            Some(sig_x[b].clone()),
                            Some(sig_z[b].clone()),
                            Some(xor_sig(&sig_x[b], &sig_z[b])),
                        ];
                        for (i, pa) in paulis_a.iter().enumerate() {
                            for (j, pb) in paulis_b.iter().enumerate() {
                                if i == 0 && j == 0 {
                                    continue;
                                }
                                let sig = match (pa, pb) {
                                    (Some(sa), Some(sb)) => xor_sig(sa, sb),
                                    (Some(sa), None) => sa.clone(),
                                    (None, Some(sb)) => sb.clone(),
                                    (None, None) => unreachable!(),
                                };
                                add_component(sig, each);
                            }
                        }
                    }
                },
            }
        }

        // Deterministic mechanism order: sort by detector support then
        // observable support.
        let mut mechanisms: Vec<((BitVec, BitVec), f64)> = merged.into_iter().collect();
        mechanisms.sort_by(|a, b| {
            let ka: (Vec<usize>, Vec<usize>) =
                (a.0 .0.iter_ones().collect(), a.0 .1.iter_ones().collect());
            let kb: (Vec<usize>, Vec<usize>) =
                (b.0 .0.iter_ones().collect(), b.0 .1.iter_ones().collect());
            ka.cmp(&kb)
        });

        let mut priors = Vec::with_capacity(mechanisms.len());
        let mut mech_dets = Vec::with_capacity(mechanisms.len());
        let mut mech_obs = Vec::with_capacity(mechanisms.len());
        let mut undetectable = 0usize;
        for ((dets, obs), p) in mechanisms {
            if dets.is_zero() {
                undetectable += 1;
            }
            priors.push(p);
            mech_dets.push(dets.iter_ones().map(|d| d as u32).collect());
            mech_obs.push(obs.iter_ones().map(|o| o as u32).collect());
        }

        // Assemble sparse matrices (detectors × mechanisms).
        let ncols = priors.len();
        let mut det_rows: Vec<Vec<usize>> = vec![Vec::new(); nd];
        for (col, dets) in mech_dets.iter().enumerate() {
            for &d in dets {
                det_rows[d as usize].push(col);
            }
        }
        let check = SparseBitMatrix::from_row_indices(nd, ncols, &det_rows);
        let mut obs_rows: Vec<Vec<usize>> = vec![Vec::new(); no];
        for (col, obs) in mech_obs.iter().enumerate() {
            for &o in obs {
                obs_rows[o as usize].push(col);
            }
        }
        let obs = SparseBitMatrix::from_row_indices(no, ncols, &obs_rows);

        Self {
            num_detectors: nd,
            num_observables: no,
            priors,
            mech_dets,
            mech_obs,
            check,
            obs,
            undetectable,
        }
    }

    /// Number of detectors (rows of the decoding problem).
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Number of error mechanisms (columns).
    pub fn num_mechanisms(&self) -> usize {
        self.priors.len()
    }

    /// Mechanisms that flip no detector (they would be invisible to any
    /// decoder). Zero for well-formed memory experiments.
    pub fn num_undetectable(&self) -> usize {
        self.undetectable
    }

    /// Per-mechanism prior probabilities.
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// The detectors × mechanisms check matrix (the decoder's `H`).
    pub fn check_matrix(&self) -> &SparseBitMatrix {
        &self.check
    }

    /// The observables × mechanisms matrix (the decoder's `L`).
    pub fn observable_matrix(&self) -> &SparseBitMatrix {
        &self.obs
    }

    /// Detector support of mechanism `m`.
    pub fn mechanism_detectors(&self, m: usize) -> &[u32] {
        &self.mech_dets[m]
    }

    /// Observable support of mechanism `m`.
    pub fn mechanism_observables(&self, m: usize) -> &[u32] {
        &self.mech_obs[m]
    }

    /// Judges a correction: given the true observable flips of a shot and
    /// a decoder's mechanism estimate `error_hat`, returns `true` if the
    /// corrected state carries a logical error.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn is_logical_error(&self, true_obs_flips: &BitVec, error_hat: &BitVec) -> bool {
        assert_eq!(
            true_obs_flips.len(),
            self.num_observables,
            "observable count mismatch"
        );
        let predicted = self.obs.mul_vec(error_hat);
        predicted != *true_obs_flips
    }
}

impl fmt::Debug for DetectorErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DetectorErrorModel(detectors={}, mechanisms={}, observables={}, undetectable={})",
            self.num_detectors,
            self.num_mechanisms(),
            self.num_observables,
            self.undetectable
        )
    }
}

/// One sampled shot of a memory experiment.
#[derive(Debug, Clone)]
pub struct Shot {
    /// The fault vector over mechanisms.
    pub fault: BitVec,
    /// The triggered detectors (`check · fault`).
    pub syndrome: BitVec,
    /// The true observable flips (`obs · fault`).
    pub obs_flips: BitVec,
}

/// Samples (syndrome, observable) shots from a [`DetectorErrorModel`].
///
/// # Examples
///
/// ```
/// use qldpc_circuit::{DemSampler, MemoryExperiment, NoiseModel};
/// use qldpc_codes::bb;
/// use rand::SeedableRng;
///
/// let exp = MemoryExperiment::memory_z(&bb::bb72(), 2, &NoiseModel::uniform_depolarizing(1e-3));
/// let dem = exp.detector_error_model();
/// let sampler = DemSampler::new(&dem);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let shot = sampler.sample(&mut rng);
/// assert_eq!(shot.syndrome.len(), dem.num_detectors());
/// ```
#[derive(Debug, Clone)]
pub struct DemSampler<'a> {
    dem: &'a DetectorErrorModel,
}

impl<'a> DemSampler<'a> {
    /// Creates a sampler borrowing the model.
    pub fn new(dem: &'a DetectorErrorModel) -> Self {
        Self { dem }
    }

    /// Draws one shot.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Shot {
        let dem = self.dem;
        let mut fault = BitVec::zeros(dem.num_mechanisms());
        let mut syndrome = BitVec::zeros(dem.num_detectors());
        let mut obs_flips = BitVec::zeros(dem.num_observables());
        for (m, &p) in dem.priors.iter().enumerate() {
            if rng.random::<f64>() < p {
                fault.set(m, true);
                for &d in &dem.mech_dets[m] {
                    syndrome.flip(d as usize);
                }
                for &o in &dem.mech_obs[m] {
                    obs_flips.flip(o as usize);
                }
            }
        }
        Shot {
            fault,
            syndrome,
            obs_flips,
        }
    }

    /// Draws `count` shots, computing all syndromes and observable
    /// flips through the bit-sliced batch kernel
    /// (`SparseBitMatrix::mul_batch`) — 64 shots per word-XOR pass —
    /// instead of sweeping the mechanism lists once per shot.
    ///
    /// Consumes the RNG in exactly the same order as `count` calls to
    /// [`Self::sample`] (one draw per mechanism per shot, fault
    /// sampling is untouched), and `check · fault` / `obs · fault`
    /// equal the per-shot detector sweeps bit for bit, so the returned
    /// shots are identical to a sequential sampling loop.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Shot> {
        let dem = self.dem;
        let faults: Vec<BitVec> = (0..count)
            .map(|_| {
                let mut fault = BitVec::zeros(dem.num_mechanisms());
                for (m, &p) in dem.priors.iter().enumerate() {
                    if rng.random::<f64>() < p {
                        fault.set(m, true);
                    }
                }
                fault
            })
            .collect();
        let syndromes = dem.check_matrix().mul_batch(&faults);
        let obs = dem.observable_matrix().mul_batch(&faults);
        faults
            .into_iter()
            .zip(syndromes.into_iter().zip(obs))
            .map(|(fault, (syndrome, obs_flips))| Shot {
                fault,
                syndrome,
                obs_flips,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Pauli;
    use crate::memory::MemoryExperiment;
    use crate::noise::NoiseModel;
    use qldpc_codes::bb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_dem() -> DetectorErrorModel {
        let exp =
            MemoryExperiment::memory_z(&bb::bb72(), 2, &NoiseModel::uniform_depolarizing(1e-3));
        exp.detector_error_model()
    }

    #[test]
    fn no_undetectable_mechanisms() {
        let dem = small_dem();
        assert_eq!(dem.num_undetectable(), 0);
        assert!(dem.num_mechanisms() > 500);
    }

    #[test]
    fn sample_batch_matches_sequential_sampling() {
        let dem = small_dem();
        let sampler = DemSampler::new(&dem);
        let mut rng_batch = StdRng::seed_from_u64(9);
        let mut rng_seq = StdRng::seed_from_u64(9);
        for count in [1usize, 3, 7] {
            for shot in sampler.sample_batch(&mut rng_batch, count) {
                let seq = sampler.sample(&mut rng_seq);
                assert_eq!(shot.fault, seq.fault);
                assert_eq!(shot.syndrome, seq.syndrome);
                assert_eq!(shot.obs_flips, seq.obs_flips);
            }
        }
        // Both consumed the RNG stream to the same position.
        use rand::Rng;
        assert_eq!(rng_batch.random::<u64>(), rng_seq.random::<u64>());
    }

    #[test]
    fn priors_are_probabilities() {
        let dem = small_dem();
        for &p in dem.priors() {
            assert!(p > 0.0 && p < 0.5, "prior {p} out of the sane range");
        }
    }

    #[test]
    fn backward_sweep_matches_forward_propagation() {
        // Recompute every mechanism by brute-force forward propagation and
        // compare the merged maps.
        let exp =
            MemoryExperiment::memory_z(&bb::bb72(), 2, &NoiseModel::uniform_depolarizing(2e-3));
        let dem = exp.detector_error_model();
        let circuit = exp.circuit();

        let meas_to_sig = |flips: &BitVec| -> (Vec<u32>, Vec<u32>) {
            let mut dets = Vec::new();
            for (d, meas_set) in exp.detectors().iter().enumerate() {
                let parity = meas_set.iter().filter(|&&m| flips.get(m as usize)).count() % 2;
                if parity == 1 {
                    dets.push(d as u32);
                }
            }
            let mut obs = Vec::new();
            for (o, meas_set) in exp.observables().iter().enumerate() {
                let parity = meas_set.iter().filter(|&&m| flips.get(m as usize)).count() % 2;
                if parity == 1 {
                    obs.push(o as u32);
                }
            }
            (dets, obs)
        };

        let mut merged: HashMap<(Vec<u32>, Vec<u32>), f64> = HashMap::new();
        let mut add = |key: (Vec<u32>, Vec<u32>), p: f64| {
            if key.0.is_empty() && key.1.is_empty() {
                return;
            }
            let e = merged.entry(key).or_insert(0.0);
            *e = *e * (1.0 - p) + p * (1.0 - *e);
        };
        for (pos, op) in circuit.ops().iter().enumerate() {
            if let Op::Noise(ch) = op {
                match *ch {
                    NoiseChannel::XError(q, p) => {
                        add(
                            meas_to_sig(&circuit.propagate_fault(pos + 1, q, Pauli::X)),
                            p,
                        );
                    }
                    NoiseChannel::Depolarize1(q, p) => {
                        for pauli in [Pauli::X, Pauli::Z, Pauli::Y] {
                            add(
                                meas_to_sig(&circuit.propagate_fault(pos + 1, q, pauli)),
                                p / 3.0,
                            );
                        }
                    }
                    NoiseChannel::Depolarize2(a, b, p) => {
                        let opts = [None, Some(Pauli::X), Some(Pauli::Z), Some(Pauli::Y)];
                        for (i, pa) in opts.iter().enumerate() {
                            for (j, pb) in opts.iter().enumerate() {
                                if i == 0 && j == 0 {
                                    continue;
                                }
                                let mut flips = BitVec::zeros(circuit.num_measurements());
                                if let Some(pa) = pa {
                                    flips.xor_assign(&circuit.propagate_fault(pos + 1, a, *pa));
                                }
                                if let Some(pb) = pb {
                                    flips.xor_assign(&circuit.propagate_fault(pos + 1, b, *pb));
                                }
                                add(meas_to_sig(&flips), p / 15.0);
                            }
                        }
                    }
                }
            }
        }

        assert_eq!(
            merged.len(),
            dem.num_mechanisms(),
            "mechanism count mismatch"
        );
        for m in 0..dem.num_mechanisms() {
            let key = (
                dem.mechanism_detectors(m).to_vec(),
                dem.mechanism_observables(m).to_vec(),
            );
            let p_fwd = merged
                .get(&key)
                .unwrap_or_else(|| panic!("mechanism {key:?} missing from forward model"));
            assert!(
                (p_fwd - dem.priors()[m]).abs() < 1e-12,
                "prior mismatch for {key:?}: {p_fwd} vs {}",
                dem.priors()[m]
            );
        }
    }

    #[test]
    fn sampled_syndrome_matches_fault_columns() {
        let dem = small_dem();
        let sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let shot = sampler.sample(&mut rng);
            assert_eq!(dem.check_matrix().mul_vec(&shot.fault), shot.syndrome);
            assert_eq!(dem.observable_matrix().mul_vec(&shot.fault), shot.obs_flips);
        }
    }

    #[test]
    fn perfect_decoding_is_not_a_logical_error() {
        let dem = small_dem();
        let sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(5);
        let shot = sampler.sample(&mut rng);
        assert!(!dem.is_logical_error(&shot.obs_flips, &shot.fault));
    }

    #[test]
    fn mechanism_count_scales_with_rounds() {
        let noise = NoiseModel::uniform_depolarizing(1e-3);
        let d2 = MemoryExperiment::memory_z(&bb::bb72(), 2, &noise)
            .detector_error_model()
            .num_mechanisms();
        let d4 = MemoryExperiment::memory_z(&bb::bb72(), 4, &noise)
            .detector_error_model()
            .num_mechanisms();
        assert!(d4 > d2 + (d4 - d2) / 3, "mechanisms must grow with rounds");
        assert!(d4 < 3 * d2, "growth should be roughly linear");
    }
}
