//! The d-round CSS syndrome-extraction memory experiment.

use crate::circuit::{Circuit, NoiseChannel};
use crate::dem::DetectorErrorModel;
use crate::noise::NoiseModel;
use qldpc_codes::CssCode;
use qldpc_gf2::{BitMatrix, SparseBitMatrix};

/// A noisy memory experiment on a CSS (or subsystem CSS) code.
///
/// The experiment prepares all data qubits in the measurement basis,
/// runs `rounds` rounds of ancilla-based syndrome extraction, then measures
/// every data qubit destructively. For a memory-Z experiment:
///
/// * each round measures all Z-type checks (CNOT data→ancilla) and then
///   all X-type checks (H, CNOT ancilla→data, H),
/// * detectors compare *stabilizer-valued combinations* of Z-check
///   outcomes between consecutive rounds — for stabilizer codes each check
///   row is itself a stabilizer, so the combinations degenerate to the
///   familiar per-check comparisons; for subsystem codes the combinations
///   are the gauge products that commute with the opposite-type gauge
///   group (computed as `ker(H_X · H_Zᵀ)`),
/// * the logical observables are the final-data parities of the logical-Z
///   representatives.
///
/// A memory-X experiment is the CSS-dual construction (roles of X and Z
/// swapped), which under the symmetric depolarizing noise model is the
/// exact mirror of memory-Z.
///
/// # Examples
///
/// ```
/// use qldpc_circuit::{MemoryExperiment, NoiseModel};
/// use qldpc_codes::bb;
///
/// let exp = MemoryExperiment::memory_z(&bb::bb72(), 2, &NoiseModel::uniform_depolarizing(1e-3));
/// assert_eq!(exp.rounds(), 2);
/// assert_eq!(exp.num_observables(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryExperiment {
    circuit: Circuit,
    /// Detector definitions: sets of measurement indices whose XOR is
    /// deterministic in the noiseless circuit.
    detectors: Vec<Vec<u32>>,
    /// Observable definitions: sets of final-data measurement indices.
    observables: Vec<Vec<u32>>,
    rounds: usize,
    name: String,
}

impl MemoryExperiment {
    /// Builds the memory-Z experiment: decodes X-type faults via Z-type
    /// checks, protecting the logical-Z observables.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn memory_z(code: &CssCode, rounds: usize, noise: &NoiseModel) -> Self {
        Self::build(
            code.hx(),
            code.hz(),
            &code.logicals().z,
            rounds,
            noise,
            format!("{} memory-Z ({} rounds)", code.name(), rounds),
        )
    }

    /// Builds the memory-X experiment (the CSS dual of [`Self::memory_z`]).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn memory_x(code: &CssCode, rounds: usize, noise: &NoiseModel) -> Self {
        Self::build(
            code.hz(),
            code.hx(),
            &code.logicals().x,
            rounds,
            noise,
            format!("{} memory-X ({} rounds)", code.name(), rounds),
        )
    }

    /// Shared construction: `h_other` are the checks of the opposite type
    /// (measured transversally via H-conjugated ancillas), `h_same` the
    /// checks whose outcomes form the detectors, `logicals` the protected
    /// observables.
    fn build(
        h_other: &SparseBitMatrix,
        h_same: &SparseBitMatrix,
        logicals: &BitMatrix,
        rounds: usize,
        noise: &NoiseModel,
        name: String,
    ) -> Self {
        assert!(rounds > 0, "memory experiment needs at least one round");
        let n = h_same.cols();
        let m_same = h_same.rows();
        let m_other = h_other.rows();
        // Qubit layout: data 0..n, "same" ancillas, then "other" ancillas.
        let anc_same = |c: usize| (n + c) as u32;
        let anc_other = |c: usize| (n + m_same + c) as u32;
        let mut circuit = Circuit::new(n + m_same + m_other);

        let mut meas_same: Vec<Vec<u32>> = Vec::with_capacity(rounds);
        for _round in 0..rounds {
            // --- "same"-type checks (e.g. Z checks in memory-Z):
            // data → ancilla CNOTs, Z-basis measurement.
            let mut this_round = Vec::with_capacity(m_same);
            for c in 0..m_same {
                let a = anc_same(c);
                circuit.reset(a);
                if noise.reset_flip > 0.0 {
                    circuit.noise(NoiseChannel::XError(a, noise.reset_flip));
                }
            }
            for c in 0..m_same {
                let a = anc_same(c);
                for &q in h_same.row_support(c) {
                    circuit.cnot(q, a);
                    if noise.two_qubit_gate > 0.0 {
                        circuit.noise(NoiseChannel::Depolarize2(q, a, noise.two_qubit_gate));
                    }
                }
            }
            for c in 0..m_same {
                let a = anc_same(c);
                if noise.measurement_flip > 0.0 {
                    circuit.noise(NoiseChannel::XError(a, noise.measurement_flip));
                }
                this_round.push(circuit.measure(a) as u32);
            }
            meas_same.push(this_round);

            // --- "other"-type checks (e.g. X checks in memory-Z):
            // H, ancilla → data CNOTs, H, Z-basis measurement.
            for c in 0..m_other {
                let a = anc_other(c);
                circuit.reset(a);
                if noise.reset_flip > 0.0 {
                    circuit.noise(NoiseChannel::XError(a, noise.reset_flip));
                }
                circuit.h(a);
                if noise.single_qubit_gate > 0.0 {
                    circuit.noise(NoiseChannel::Depolarize1(a, noise.single_qubit_gate));
                }
            }
            for c in 0..m_other {
                let a = anc_other(c);
                for &q in h_other.row_support(c) {
                    circuit.cnot(a, q);
                    if noise.two_qubit_gate > 0.0 {
                        circuit.noise(NoiseChannel::Depolarize2(a, q, noise.two_qubit_gate));
                    }
                }
            }
            for c in 0..m_other {
                let a = anc_other(c);
                circuit.h(a);
                if noise.single_qubit_gate > 0.0 {
                    circuit.noise(NoiseChannel::Depolarize1(a, noise.single_qubit_gate));
                }
                if noise.measurement_flip > 0.0 {
                    circuit.noise(NoiseChannel::XError(a, noise.measurement_flip));
                }
                circuit.measure(a);
            }
        }

        // Final destructive data measurement.
        let mut data_meas = Vec::with_capacity(n);
        for q in 0..n {
            if noise.measurement_flip > 0.0 {
                circuit.noise(NoiseChannel::XError(q as u32, noise.measurement_flip));
            }
            data_meas.push(circuit.measure(q as u32) as u32);
        }

        // Stabilizer coefficient basis: combinations `a` of "same" rows
        // whose product commutes with every "other" check, i.e.
        // aᵀ ∈ ker(H_other · H_sameᵀ). For stabilizer CSS codes that
        // matrix is zero and the kernel basis is the unit vectors.
        let m_mat = h_other.to_dense().mul(&h_same.to_dense().transpose());
        let coeff_basis = m_mat.kernel();

        let mut detectors: Vec<Vec<u32>> = Vec::new();
        for round in 0..rounds {
            for a in &coeff_basis {
                let mut d = Vec::new();
                for c in a.iter_ones() {
                    d.push(meas_same[round][c]);
                    if round > 0 {
                        d.push(meas_same[round - 1][c]);
                    }
                }
                detectors.push(d);
            }
        }
        // Final boundary: last-round combination vs. reconstructed value
        // from the destructive data measurements.
        for a in &coeff_basis {
            let mut d = Vec::new();
            let mut support = qldpc_gf2::BitVec::zeros(n);
            for c in a.iter_ones() {
                d.push(meas_same[rounds - 1][c]);
                for &q in h_same.row_support(c) {
                    support.flip(q as usize);
                }
            }
            for q in support.iter_ones() {
                d.push(data_meas[q]);
            }
            detectors.push(d);
        }

        let observables: Vec<Vec<u32>> = (0..logicals.rows())
            .map(|l| logicals.row(l).iter_ones().map(|q| data_meas[q]).collect())
            .collect();

        Self {
            circuit,
            detectors,
            observables,
            rounds,
            name,
        }
    }

    /// The underlying noisy circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Detector definitions as measurement-index sets.
    pub fn detectors(&self) -> &[Vec<u32>] {
        &self.detectors
    }

    /// Observable definitions as measurement-index sets.
    pub fn observables(&self) -> &[Vec<u32>] {
        &self.observables
    }

    /// Number of detectors.
    pub fn num_detectors(&self) -> usize {
        self.detectors.len()
    }

    /// Number of logical observables.
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }

    /// Number of syndrome-extraction rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Experiment name (code, basis, rounds).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Extracts the detector error model via the backward fault sweep.
    pub fn detector_error_model(&self) -> DetectorErrorModel {
        DetectorErrorModel::from_experiment(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_codes::{bb, shp};

    #[test]
    fn detector_count_stabilizer_code() {
        let code = bb::bb72();
        let noise = NoiseModel::uniform_depolarizing(1e-3);
        let exp = MemoryExperiment::memory_z(&code, 3, &noise);
        // 36 Z checks × (3 rounds + final boundary).
        assert_eq!(exp.num_detectors(), 36 * 4);
        assert_eq!(exp.num_observables(), 12);
        assert_eq!(exp.circuit().num_measurements(), 3 * 72 + 72);
    }

    #[test]
    fn first_round_detectors_are_single_measurements() {
        let code = bb::bb72();
        let exp = MemoryExperiment::memory_z(&code, 2, &NoiseModel::noiseless());
        for d in &exp.detectors()[..36] {
            assert_eq!(d.len(), 1, "round-0 detectors compare against |0…0⟩");
        }
        for d in &exp.detectors()[36..72] {
            assert_eq!(d.len(), 2, "bulk detectors compare consecutive rounds");
        }
    }

    #[test]
    fn subsystem_code_uses_stabilizer_combinations() {
        let simplex3 = qldpc_codes::classical::ClassicalCode::simplex(3);
        let code = shp::subsystem_hypergraph_product("shp-7x7", &simplex3, &simplex3);
        let exp = MemoryExperiment::memory_z(&code, 2, &NoiseModel::uniform_depolarizing(1e-3));
        // Coefficient space: ker(G_X · G_Zᵀ) over the 28 Z-gauge rows.
        let gx = code.hx().to_dense();
        let gz = code.hz().to_dense();
        let kernel_dim = gx.mul(&gz.transpose()).kernel().len();
        assert_eq!(exp.num_detectors(), kernel_dim * 3);
        // Subsystem detectors combine several gauge outcomes.
        assert!(exp.detectors()[..kernel_dim].iter().any(|d| d.len() > 1));
    }

    #[test]
    fn memory_x_mirrors_memory_z() {
        let code = bb::bb72();
        let noise = NoiseModel::uniform_depolarizing(1e-3);
        let z = MemoryExperiment::memory_z(&code, 2, &noise);
        let x = MemoryExperiment::memory_x(&code, 2, &noise);
        // bb72 is symmetric between bases: same shape everywhere.
        assert_eq!(z.num_detectors(), x.num_detectors());
        assert_eq!(z.num_observables(), x.num_observables());
        assert_eq!(z.circuit().num_gates(), x.circuit().num_gates());
    }

    #[test]
    fn noiseless_circuit_has_no_noise_locations() {
        let code = bb::bb72();
        let exp = MemoryExperiment::memory_z(&code, 2, &NoiseModel::noiseless());
        assert_eq!(exp.circuit().num_noise_locations(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        MemoryExperiment::memory_z(&bb::bb72(), 0, &NoiseModel::noiseless());
    }
}
