//! Slicing a [`DetectorErrorModel`] into a sliding-window
//! [`WindowPlan`] for streaming decoding.
//!
//! A memory experiment's detectors come in `rounds + 1` equal blocks of
//! `dets_per_round` (one block per syndrome-extraction round plus the
//! final data-measurement boundary), and every error mechanism touches
//! a short, contiguous span of those blocks. That locality is what
//! makes sliding-window decoding work: a window of `W` consecutive
//! round blocks sees the *entire* detector support of any mechanism
//! whose earliest detector is comfortably inside it, so committing the
//! oldest `C` rounds of each window loses (almost) nothing relative to
//! decoding the whole history at once.
//!
//! [`window_plan`] implements the slicing:
//!
//! * Window `w` covers round blocks `[w·C, min(w·C + W, R))` where `R`
//!   is the total number of round blocks. The plan has the smallest
//!   number of windows whose committed ranges cover all `R` blocks.
//! * Each mechanism is *owned* by (appears as a column in) every window
//!   whose span contains its earliest round, and is *committed* by
//!   exactly one of them: the window whose committed range
//!   `[w·C, w·C + C)` contains that earliest round (the last window
//!   commits everything left).
//! * A window's check matrix truncates detector support beyond its
//!   span; the truncated detectors of *committed* columns are recorded
//!   as spill (the session XORs them out of its residual syndrome when
//!   the mechanism is committed as flipped), and non-committed columns
//!   carry into the next window with their posterior beliefs as priors.
//!
//! With `W >= R` the plan degenerates to a single window whose problem
//! is exactly the offline one (columns permuted earliest-round-first).

use crate::DetectorErrorModel;
use qldpc_decoder_api::{CarryLink, WindowPlan, WindowSpec};
use qldpc_gf2::SparseBitMatrix;

/// Builds the sliding-window plan for `dem` with window span
/// `window_rounds` (`W`) and commit stride `commit_rounds` (`C`), both
/// in round blocks of `dets_per_round` detectors.
///
/// # Panics
///
/// Panics when `dem.num_detectors()` is not a multiple of
/// `dets_per_round`, when `commit_rounds` is zero or exceeds
/// `window_rounds`, or when the model has undetectable mechanisms
/// (they belong to no window).
pub fn window_plan(
    dem: &DetectorErrorModel,
    dets_per_round: usize,
    window_rounds: usize,
    commit_rounds: usize,
) -> WindowPlan {
    let k = dets_per_round;
    assert!(k > 0, "dets_per_round must be positive");
    assert!(
        dem.num_detectors().is_multiple_of(k),
        "num_detectors ({}) is not a multiple of dets_per_round ({k})",
        dem.num_detectors()
    );
    assert!(commit_rounds > 0, "commit_rounds must be positive");
    assert!(
        commit_rounds <= window_rounds,
        "commit stride C={commit_rounds} must not exceed window span W={window_rounds}"
    );
    assert_eq!(
        dem.num_undetectable(),
        0,
        "undetectable mechanisms belong to no window"
    );

    let num_rounds = dem.num_detectors() / k;
    let (w_span, c_stride) = (window_rounds, commit_rounds);
    // Smallest window count whose last window reaches round R: the last
    // window starts at (n-1)·C and must satisfy (n-1)·C + W >= R.
    let num_windows = if w_span >= num_rounds {
        1
    } else {
        1 + (num_rounds - w_span).div_ceil(c_stride)
    };

    // Earliest detector round of each mechanism (detector lists are
    // sorted ascending, so the first entry decides ownership).
    let earliest: Vec<usize> = (0..dem.num_mechanisms())
        .map(|m| {
            let dets = dem.mechanism_detectors(m);
            debug_assert!(!dets.is_empty());
            dets[0] as usize / k
        })
        .collect();

    // Mechanism m is a column of every window whose span contains its
    // earliest round, i.e. w·C <= e < w·C + W, and is committed by the
    // window whose *commit* range contains it (capped at the last).
    let commit_window = |e: usize| (e / c_stride).min(num_windows - 1);
    let first_window = |e: usize| {
        if e + 1 > w_span {
            (e + 1 - w_span).div_ceil(c_stride)
        } else {
            0
        }
    };

    let mut committed: Vec<Vec<u32>> = vec![Vec::new(); num_windows];
    let mut carried: Vec<Vec<u32>> = vec![Vec::new(); num_windows];
    for (m, &e) in earliest.iter().enumerate() {
        let cw = commit_window(e);
        committed[cw].push(m as u32);
        for carry in carried.iter_mut().take(cw).skip(first_window(e).min(cw)) {
            carry.push(m as u32);
        }
    }

    let mut windows = Vec::with_capacity(num_windows);
    for w in 0..num_windows {
        let start_round = w * c_stride;
        let end_round = (start_round + w_span).min(num_rounds);
        let commit_end_round = if w + 1 == num_windows {
            end_round
        } else {
            start_round + c_stride
        };

        // Committed columns first, then carried; ascending global id
        // within each group (push order above already guarantees it).
        let mut mechanisms = committed[w].clone();
        let commit_cols = mechanisms.len();
        mechanisms.extend_from_slice(&carried[w]);

        let local_rows = (end_round - start_round) * k;
        let mut col_rows: Vec<Vec<usize>> = Vec::with_capacity(mechanisms.len());
        let mut spill: Vec<Vec<u32>> = Vec::with_capacity(commit_cols);
        for (j, &m) in mechanisms.iter().enumerate() {
            let dets = dem.mechanism_detectors(m as usize);
            let mut rows = Vec::with_capacity(dets.len());
            for &d in dets {
                let d = d as usize;
                debug_assert!(d >= start_round * k);
                if d < end_round * k {
                    rows.push(d - start_round * k);
                }
            }
            col_rows.push(rows);
            if j < commit_cols {
                spill.push(
                    dets.iter()
                        .copied()
                        .filter(|&d| d as usize >= commit_end_round * k)
                        .collect(),
                );
            }
        }
        // from_row_indices wants rows; transpose the per-column support.
        let mut row_cols: Vec<Vec<usize>> = vec![Vec::new(); local_rows];
        for (j, rows) in col_rows.iter().enumerate() {
            for &r in rows {
                row_cols[r].push(j);
            }
        }
        let h = SparseBitMatrix::from_row_indices(local_rows, mechanisms.len(), &row_cols);
        let priors: Vec<f64> = mechanisms
            .iter()
            .map(|&m| dem.priors()[m as usize])
            .collect();

        windows.push(WindowSpec {
            index: w,
            start_round,
            end_round,
            commit_end_round,
            mechanisms,
            commit_cols,
            h,
            priors,
            spill,
            carry: Vec::new(),
        });
    }

    // Carry links: every non-committed column of window w reappears in
    // window w+1 (its commit window is later, and window spans overlap
    // by at least W - C rounds, so containment is contiguous).
    for w in 0..num_windows.saturating_sub(1) {
        let next_cols: std::collections::HashMap<u32, u32> = windows[w + 1]
            .mechanisms
            .iter()
            .enumerate()
            .map(|(j, &m)| (m, j as u32))
            .collect();
        let spec = &windows[w];
        let carry: Vec<CarryLink> = (spec.commit_cols..spec.mechanisms.len())
            .map(|j| CarryLink {
                from_col: j as u32,
                to_col: *next_cols
                    .get(&spec.mechanisms[j])
                    .expect("carried mechanism must be a column of the next window"),
            })
            .collect();
        windows[w].carry = carry;
    }

    WindowPlan {
        windows,
        num_detectors: dem.num_detectors(),
        num_mechanisms: dem.num_mechanisms(),
        dets_per_round: k,
        num_round_blocks: num_rounds,
        window_rounds: w_span,
        commit_rounds: c_stride,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryExperiment, NoiseModel};
    use qldpc_codes::bb;

    fn bb72_dem(rounds: usize) -> (DetectorErrorModel, usize) {
        let code = bb::bb72();
        let noise = NoiseModel::uniform_depolarizing(1e-3);
        let exp = MemoryExperiment::memory_z(&code, rounds, &noise);
        let dem = exp.detector_error_model();
        let k = dem.num_detectors() / (rounds + 1);
        (dem, k)
    }

    #[test]
    fn every_mechanism_committed_exactly_once() {
        let (dem, k) = bb72_dem(4);
        for (w_span, c) in [(2, 1), (3, 1), (3, 2), (4, 2), (5, 5)] {
            let plan = window_plan(&dem, k, w_span, c);
            let mut commits = vec![0usize; dem.num_mechanisms()];
            for spec in &plan.windows {
                assert_eq!(spec.spill.len(), spec.commit_cols);
                for &m in &spec.mechanisms[..spec.commit_cols] {
                    commits[m as usize] += 1;
                }
            }
            assert!(
                commits.iter().all(|&c| c == 1),
                "W={w_span} C={c}: every mechanism must be committed exactly once"
            );
        }
    }

    #[test]
    fn window_columns_cover_full_detector_support() {
        // Every detector hit of every mechanism lands either inside a
        // window that owns the mechanism (as a matrix row) or in the
        // spill of its commit window — nothing is silently dropped.
        // Detectors in the overlap `[commit_end_round, end_round)`
        // appear in *both*: the commit window used them for inference,
        // and the next window must still have them XORed out of its
        // residual syndrome.
        let (dem, k) = bb72_dem(4);
        let plan = window_plan(&dem, k, 3, 1);
        for spec in &plan.windows {
            for (j, &m) in spec.mechanisms.iter().enumerate() {
                let dets = dem.mechanism_detectors(m as usize);
                let in_window = dets
                    .iter()
                    .filter(|&&d| (d as usize) < spec.end_round * k)
                    .count();
                let col_deg = spec.h.col_degree(j);
                assert_eq!(col_deg, in_window, "window {} col {j}", spec.index);
                if j < spec.commit_cols {
                    let expect_spill: Vec<u32> = dets
                        .iter()
                        .copied()
                        .filter(|&d| d as usize >= spec.commit_end_round * k)
                        .collect();
                    assert_eq!(
                        spec.spill[j], expect_spill,
                        "spill must hold exactly the post-commit detectors"
                    );
                    // Union of in-window and spill covers every detector.
                    assert!(dets.iter().all(|&d| {
                        (d as usize) < spec.end_round * k
                            || (d as usize) >= spec.commit_end_round * k
                    }));
                }
            }
        }
    }

    #[test]
    fn single_window_degenerates_to_offline_problem() {
        let (dem, k) = bb72_dem(3);
        let plan = window_plan(&dem, k, 10, 2);
        assert_eq!(plan.num_windows(), 1);
        let spec = &plan.windows[0];
        assert_eq!(spec.commit_cols, dem.num_mechanisms());
        assert_eq!(spec.h.rows(), dem.num_detectors());
        assert!(spec.carry.is_empty());
        assert!(spec.spill.iter().all(|s| s.is_empty()));
        // Same columns as the offline check matrix, permuted
        // earliest-round-first: compare per-mechanism support.
        for (j, &m) in spec.mechanisms.iter().enumerate() {
            let expect: Vec<u32> = dem.mechanism_detectors(m as usize).to_vec();
            assert_eq!(spec.h.col_support(j), &expect[..]);
            assert_eq!(spec.priors[j], dem.priors()[m as usize]);
        }
    }

    #[test]
    fn carry_links_are_consistent() {
        let (dem, k) = bb72_dem(4);
        let plan = window_plan(&dem, k, 3, 1);
        assert!(plan.num_windows() > 1);
        for w in 0..plan.num_windows() - 1 {
            let spec = &plan.windows[w];
            let next = &plan.windows[w + 1];
            assert_eq!(spec.carry.len(), spec.carry_cols());
            for link in &spec.carry {
                assert!(link.from_col as usize >= spec.commit_cols);
                assert_eq!(
                    spec.mechanisms[link.from_col as usize], next.mechanisms[link.to_col as usize],
                    "carry link must join the same global mechanism"
                );
            }
        }
        // The last window carries nothing.
        assert!(plan.windows[plan.num_windows() - 1].carry.is_empty());
    }

    #[test]
    fn committed_ranges_tile_the_rounds() {
        let (dem, k) = bb72_dem(4);
        for (w_span, c) in [(2, 1), (3, 2), (4, 3)] {
            let plan = window_plan(&dem, k, w_span, c);
            let mut round = 0;
            for spec in &plan.windows {
                assert_eq!(spec.start_round, spec.index * c);
                assert_eq!(
                    spec.commit_end_round,
                    if spec.index + 1 == plan.num_windows() {
                        spec.end_round
                    } else {
                        spec.start_round + c
                    }
                );
                assert!(spec.start_round <= round);
                round = spec.commit_end_round;
            }
            assert_eq!(round, plan.num_round_blocks);
        }
    }
}
