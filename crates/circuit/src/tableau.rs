//! A stabilizer (tableau) simulator — the reference semantics for the
//! circuit substrate.
//!
//! The detector error model is built on the *assumption* that every
//! detector (a parity of measurement outcomes) is deterministic in the
//! noiseless circuit. This module removes the assumption: it implements
//! the Aaronson–Gottesman CHP simulation, runs circuits exactly, and lets
//! tests verify that
//!
//! * every detector of a [`crate::MemoryExperiment`] XORs to zero on the
//!   noiseless circuit (including the gauge-product detectors of
//!   subsystem codes, whose *individual* outcomes are random),
//! * injected Pauli faults flip exactly the detectors the DEM predicts.
//!
//! The simulator favours clarity over speed (per-bit loops, no bit
//! packing); it is a verification oracle, not a Monte Carlo engine — the
//! fast path is [`crate::DemSampler`].

use crate::circuit::{Circuit, Op, Pauli};
use qldpc_gf2::BitVec;
use rand::Rng;

/// One measurement outcome with its determinism flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The measured bit.
    pub value: bool,
    /// Whether the outcome was forced by the state (`true`) or chosen
    /// uniformly at random (`false`, e.g. the first X-check round).
    pub deterministic: bool,
}

/// An Aaronson–Gottesman stabilizer tableau over `n` qubits.
///
/// Rows `0..n` are destabilizers, rows `n..2n` stabilizers; the state
/// starts as `|0…0⟩` (destabilizer `X_i`, stabilizer `Z_i`).
///
/// # Examples
///
/// ```
/// use qldpc_circuit::StabilizerSimulator;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut sim = StabilizerSimulator::new(2);
/// sim.h(0);
/// sim.cnot(0, 1);          // Bell pair
/// let a = sim.measure(0, &mut rng);
/// let b = sim.measure(1, &mut rng);
/// assert!(!a.deterministic); // first measurement of a Bell pair is random
/// assert!(b.deterministic);  // …the second is forced to match
/// assert_eq!(a.value, b.value);
/// ```
#[derive(Debug, Clone)]
pub struct StabilizerSimulator {
    n: usize,
    /// `x[row][qubit]`, `z[row][qubit]` Pauli bits; `r[row]` sign bit.
    x: Vec<Vec<bool>>,
    z: Vec<Vec<bool>>,
    r: Vec<bool>,
}

impl StabilizerSimulator {
    /// Initializes the `|0…0⟩` state on `n` qubits.
    pub fn new(n: usize) -> Self {
        let rows = 2 * n;
        let mut x = vec![vec![false; n]; rows];
        let mut z = vec![vec![false; n]; rows];
        for i in 0..n {
            x[i][i] = true; // destabilizer X_i
            z[n + i][i] = true; // stabilizer Z_i
        }
        Self {
            n,
            x,
            z,
            r: vec![false; rows],
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for row in 0..2 * self.n {
            self.r[row] ^= self.x[row][q] && self.z[row][q];
            std::mem::swap(&mut self.x[row][q], &mut self.z[row][q]);
        }
    }

    /// CNOT with control `c`, target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "CNOT needs distinct qubits");
        for row in 0..2 * self.n {
            self.r[row] ^= self.x[row][c] && self.z[row][t] && (self.x[row][t] == self.z[row][c]);
            self.x[row][t] ^= self.x[row][c];
            self.z[row][c] ^= self.z[row][t];
        }
    }

    /// Applies a Pauli error to `q` (used for fault injection).
    pub fn apply_pauli(&mut self, q: usize, p: Pauli) {
        for row in 0..2 * self.n {
            // Conjugating a stabilizer row by a Pauli flips its sign iff
            // they anticommute.
            let anti = match p {
                Pauli::X => self.z[row][q],
                Pauli::Z => self.x[row][q],
                Pauli::Y => self.x[row][q] != self.z[row][q],
            };
            self.r[row] ^= anti;
        }
    }

    /// Phase contribution of multiplying Pauli `(x1,z1)` by `(x2,z2)` on
    /// one qubit, as an exponent of `i` in `{-1, 0, 1}` (Aaronson &
    /// Gottesman's `g` function).
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// Row `h` ← row `h` · row `i` (Pauli product with phase tracking).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase = 2 * (self.r[h] as i32) + 2 * (self.r[i] as i32);
        for q in 0..self.n {
            phase += Self::g(self.x[i][q], self.z[i][q], self.x[h][q], self.z[h][q]);
        }
        phase = phase.rem_euclid(4);
        debug_assert!(phase == 0 || phase == 2, "stabilizer phases stay real");
        self.r[h] = phase == 2;
        for q in 0..self.n {
            self.x[h][q] ^= self.x[i][q];
            self.z[h][q] ^= self.z[i][q];
        }
    }

    /// Measures qubit `q` in the Z basis.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Outcome {
        let n = self.n;
        // A stabilizer with an X component on q anticommutes with Z_q.
        let p = (n..2 * n).find(|&row| self.x[row][q]);
        match p {
            Some(p) => {
                // Random outcome.
                for row in 0..2 * n {
                    if row != p && self.x[row][q] {
                        self.rowsum(row, p);
                    }
                }
                // Destabilizer p−n becomes the old stabilizer row p.
                self.x[p - n] = self.x[p].clone();
                self.z[p - n] = self.z[p].clone();
                self.r[p - n] = self.r[p];
                // New stabilizer: ±Z_q with a random sign.
                let value = rng.random_bool(0.5);
                for qq in 0..n {
                    self.x[p][qq] = false;
                    self.z[p][qq] = false;
                }
                self.z[p][q] = true;
                self.r[p] = value;
                Outcome {
                    value,
                    deterministic: false,
                }
            }
            None => {
                // Deterministic outcome: accumulate the relevant
                // stabilizers in a scratch row (index 2n, simulated by a
                // temporary).
                let mut sx = vec![false; n];
                let mut sz = vec![false; n];
                let mut sr = false;
                for i in 0..n {
                    if self.x[i][q] {
                        // rowsum(scratch, stabilizer i+n) inline.
                        let mut phase = 2 * (sr as i32) + 2 * (self.r[n + i] as i32);
                        for qq in 0..n {
                            phase += Self::g(self.x[n + i][qq], self.z[n + i][qq], sx[qq], sz[qq]);
                        }
                        phase = phase.rem_euclid(4);
                        sr = phase == 2;
                        for qq in 0..n {
                            sx[qq] ^= self.x[n + i][qq];
                            sz[qq] ^= self.z[n + i][qq];
                        }
                    }
                }
                Outcome {
                    value: sr,
                    deterministic: true,
                }
            }
        }
    }

    /// Resets qubit `q` to `|0⟩` (measure, then flip on a `1` outcome).
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        let outcome = self.measure(q, rng);
        if outcome.value {
            self.apply_pauli(q, Pauli::X);
        }
    }

    /// Runs a whole circuit, ignoring noise locations (exact noiseless
    /// execution), optionally injecting `fault` = `(op_position, qubit,
    /// pauli)` just before the op at `op_position`. Returns all
    /// measurement outcomes in program order.
    pub fn run_circuit<R: Rng + ?Sized>(
        circuit: &Circuit,
        fault: Option<(usize, usize, Pauli)>,
        rng: &mut R,
    ) -> Vec<Outcome> {
        let mut sim = Self::new(circuit.num_qubits());
        let mut outcomes = Vec::with_capacity(circuit.num_measurements());
        for (pos, op) in circuit.ops().iter().enumerate() {
            if let Some((fpos, q, p)) = fault {
                if fpos == pos {
                    sim.apply_pauli(q, p);
                }
            }
            match *op {
                Op::Reset(q) => sim.reset(q as usize, rng),
                Op::H(q) => sim.h(q as usize),
                Op::Cnot(c, t) => sim.cnot(c as usize, t as usize),
                Op::Measure(q) => outcomes.push(sim.measure(q as usize, rng)),
                Op::Noise(_) => {}
            }
        }
        if let Some((fpos, q, p)) = fault {
            if fpos == circuit.ops().len() {
                let mut s = sim;
                s.apply_pauli(q, p);
            }
        }
        outcomes
    }

    /// Evaluates detector values from raw outcomes: the XOR of each
    /// measurement-index set.
    pub fn detector_values(outcomes: &[Outcome], detectors: &[Vec<u32>]) -> BitVec {
        let mut out = BitVec::zeros(detectors.len());
        for (d, meas) in detectors.iter().enumerate() {
            let parity = meas.iter().filter(|&&m| outcomes[m as usize].value).count() % 2;
            if parity == 1 {
                out.set(d, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryExperiment;
    use crate::noise::NoiseModel;
    use qldpc_codes::classical::ClassicalCode;
    use qldpc_codes::{hgp, shp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_measures_zero_deterministically() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = StabilizerSimulator::new(3);
        for q in 0..3 {
            let o = sim.measure(q, &mut rng);
            assert!(o.deterministic);
            assert!(!o.value);
        }
    }

    #[test]
    fn plus_state_is_random_then_pinned() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sim = StabilizerSimulator::new(1);
        sim.h(0);
        let first = sim.measure(0, &mut rng);
        assert!(!first.deterministic);
        let second = sim.measure(0, &mut rng);
        assert!(second.deterministic);
        assert_eq!(first.value, second.value);
    }

    #[test]
    fn x_error_flips_measurement() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sim = StabilizerSimulator::new(1);
        sim.apply_pauli(0, Pauli::X);
        let o = sim.measure(0, &mut rng);
        assert!(o.deterministic);
        assert!(o.value);
    }

    #[test]
    fn ghz_outcomes_correlate() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = StabilizerSimulator::new(3);
        sim.h(0);
        sim.cnot(0, 1);
        sim.cnot(1, 2);
        let a = sim.measure(0, &mut rng);
        let b = sim.measure(1, &mut rng);
        let c = sim.measure(2, &mut rng);
        assert_eq!(a.value, b.value);
        assert_eq!(b.value, c.value);
        assert!(!a.deterministic && b.deterministic && c.deterministic);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = StabilizerSimulator::new(2);
        sim.h(0);
        sim.cnot(0, 1);
        sim.reset(0, &mut rng);
        let o = sim.measure(0, &mut rng);
        assert!(o.deterministic);
        assert!(!o.value);
    }

    /// The central verification: every detector of a memory experiment is
    /// zero on the exact noiseless circuit — for a stabilizer code.
    #[test]
    fn stabilizer_memory_detectors_are_deterministically_zero() {
        let rep = ClassicalCode::cyclic_repetition(3);
        let code = hgp::hypergraph_product("toric-3", &rep, &rep);
        let exp = MemoryExperiment::memory_z(&code, 3, &NoiseModel::noiseless());
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcomes = StabilizerSimulator::run_circuit(exp.circuit(), None, &mut rng);
            let dets = StabilizerSimulator::detector_values(&outcomes, exp.detectors());
            assert!(
                dets.is_zero(),
                "noiseless detectors fired (seed {seed}): {dets:?}"
            );
            let obs = StabilizerSimulator::detector_values(&outcomes, exp.observables());
            assert!(obs.is_zero(), "noiseless observables flipped (seed {seed})");
        }
    }

    /// Same verification for a *subsystem* code, where individual gauge
    /// outcomes are genuinely random and only the gauge-product detectors
    /// are deterministic.
    #[test]
    fn subsystem_memory_detectors_are_deterministically_zero() {
        let simplex = ClassicalCode::simplex(2); // [3,2,2]
        let code = shp::subsystem_hypergraph_product("shp-3x3", &simplex, &simplex);
        let exp = MemoryExperiment::memory_z(&code, 2, &NoiseModel::noiseless());
        let mut saw_random_gauge = false;
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcomes = StabilizerSimulator::run_circuit(exp.circuit(), None, &mut rng);
            saw_random_gauge |= outcomes.iter().any(|o| !o.deterministic);
            let dets = StabilizerSimulator::detector_values(&outcomes, exp.detectors());
            assert!(
                dets.is_zero(),
                "noiseless subsystem detectors fired (seed {seed})"
            );
            let obs = StabilizerSimulator::detector_values(&outcomes, exp.observables());
            assert!(
                obs.is_zero(),
                "noiseless subsystem observables flipped (seed {seed})"
            );
        }
        assert!(
            saw_random_gauge,
            "subsystem gauge measurements should include random outcomes"
        );
    }

    /// Injected faults flip exactly the detectors the DEM's backward sweep
    /// predicts (third independent validation path, after the forward
    /// frame propagator).
    #[test]
    fn injected_faults_match_dem_signatures() {
        let rep = ClassicalCode::repetition(3);
        let code = hgp::hypergraph_product("surface-3", &rep, &rep);
        let noise = NoiseModel::uniform_depolarizing(1e-3);
        let exp = MemoryExperiment::memory_z(&code, 2, &noise);
        let circuit = exp.circuit();
        let mut rng = StdRng::seed_from_u64(11);

        let mut tested = 0;
        for (pos, op) in circuit.ops().iter().enumerate() {
            if tested >= 12 {
                break;
            }
            if let Op::Noise(crate::circuit::NoiseChannel::XError(q, _)) = op {
                // Tableau path.
                let outcomes = StabilizerSimulator::run_circuit(
                    circuit,
                    Some((pos + 1, *q as usize, Pauli::X)),
                    &mut rng,
                );
                let dets = StabilizerSimulator::detector_values(&outcomes, exp.detectors());
                // Frame path.
                let flips = circuit.propagate_fault(pos + 1, *q, Pauli::X);
                let mut expected = BitVec::zeros(exp.num_detectors());
                for (d, meas) in exp.detectors().iter().enumerate() {
                    let parity = meas.iter().filter(|&&m| flips.get(m as usize)).count() % 2;
                    if parity == 1 {
                        expected.set(d, true);
                    }
                }
                assert_eq!(dets, expected, "fault at op {pos} disagrees");
                tested += 1;
            }
        }
        assert!(tested > 0, "no X-error locations found to test");
    }
}
