//! Property tests for the GF(2) algebra laws.

use proptest::prelude::*;
use qldpc_gf2::{BitMatrix, BitVec, OrderedEliminator, SparseBitMatrix};

fn bit_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = BitMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, c), r).prop_map(
            move |data| {
                let mut m = BitMatrix::zeros(data.len(), c);
                for (i, row) in data.iter().enumerate() {
                    for (j, &b) in row.iter().enumerate() {
                        if b {
                            m.set(i, j, true);
                        }
                    }
                }
                m
            },
        )
    })
}

fn bit_vec(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(proptest::bool::ANY, len).prop_map(|b| BitVec::from_bools(&b))
}

/// A seed-determined permutation of `0..cols` (Fisher–Yates).
fn shuffled_order(cols: usize, seed: u64) -> Vec<usize> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..cols).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xor_is_commutative_and_self_inverse(a in bit_vec(90), b in bit_vec(90)) {
        let ab = &a ^ &b;
        let ba = &b ^ &a;
        prop_assert_eq!(&ab, &ba);
        let back = &ab ^ &b;
        prop_assert_eq!(back, a);
    }

    #[test]
    fn dot_is_bilinear(a in bit_vec(70), b in bit_vec(70), c in bit_vec(70)) {
        // (a ⊕ b)·c = a·c ⊕ b·c over GF(2).
        let lhs = (&a ^ &b).dot(&c);
        let rhs = a.dot(&c) ^ b.dot(&c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn weight_matches_iter_ones(a in bit_vec(130)) {
        prop_assert_eq!(a.weight(), a.iter_ones().count());
    }

    #[test]
    fn matrix_vector_distributes(m in bit_matrix(1..6, 1..10), ) {
        let cols = m.cols();
        let strategy_runs = 1; // one pair per matrix case
        for _ in 0..strategy_runs {
            let a = BitVec::from_indices(cols, &[]);
            let ones: Vec<usize> = (0..cols).step_by(2).collect();
            let b = BitVec::from_indices(cols, &ones);
            let lhs = m.mul_vec(&(&a ^ &b));
            let rhs = &m.mul_vec(&a) ^ &m.mul_vec(&b);
            prop_assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn transpose_reverses_products(a in bit_matrix(1..5, 1..6), b_cols in 1usize..6) {
        // Build b with compatible shape.
        let b = BitMatrix::identity(a.cols()).hstack(&BitMatrix::zeros(a.cols(), b_cols));
        let lhs = a.mul(&b).transpose();
        let rhs = b.transpose().mul(&a.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rank_is_transpose_invariant(m in bit_matrix(1..7, 1..9)) {
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }

    #[test]
    fn kernel_is_orthogonal_to_row_space(m in bit_matrix(1..7, 1..9)) {
        let kernel = m.kernel();
        let rows = m.row_space_basis();
        for k in &kernel {
            prop_assert!(m.mul_vec(k).is_zero());
            for r in &rows {
                prop_assert!(!r.dot(k), "kernel vector not orthogonal to row space");
            }
        }
        prop_assert_eq!(kernel.len() + m.rank(), m.cols());
    }

    #[test]
    fn echelon_preserves_row_space(m in bit_matrix(1..6, 1..8)) {
        let ech = m.echelon(true);
        // Every original row must reduce to zero against the echelon rows.
        let basis = ech.matrix().row_space_basis();
        for r in 0..m.rows() {
            let mut v = m.row(r);
            for b in &basis {
                if let Some(p) = b.iter_ones().next() {
                    if v.get(p) {
                        v.xor_assign(b);
                    }
                }
            }
            prop_assert!(v.is_zero(), "row {r} escapes the echelon row space");
        }
    }

    #[test]
    fn ordered_echelon_solutions_satisfy(m in bit_matrix(2..6, 2..8), seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut e = BitVec::zeros(m.cols());
        for i in 0..m.cols() {
            if rng.random_bool(0.4) { e.set(i, true); }
        }
        let s = m.mul_vec(&e);
        let order: Vec<usize> = (0..m.cols()).collect();
        let ech = m.ordered_echelon(&s, &order);
        prop_assert!(ech.is_consistent());
        let sol = ech.solve_for_pattern(&[]);
        prop_assert_eq!(m.mul_vec(&sol), s);
    }

    #[test]
    fn block_transpose_matches_per_bit_transpose(m in bit_matrix(1..100, 1..100)) {
        let t = m.transpose();
        let mut naive = BitMatrix::zeros(m.cols(), m.rows());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                if m.get(r, c) {
                    naive.set(c, r, true);
                }
            }
        }
        prop_assert_eq!(&t, &naive);
        prop_assert_eq!(t.transpose(), m);
    }

    #[test]
    fn eliminator_matches_naive_ordered_echelon(
        inputs in bit_matrix(1..20, 1..70).prop_flat_map(|m| {
            let r = m.rows();
            (Just(m), 0u64..1_000_000, bit_vec(r))
        })
    ) {
        let (m, order_seed, rhs) = inputs;
        let order = shuffled_order(m.cols(), order_seed);
        let naive = m.ordered_echelon(&rhs, &order);
        let mut elim = OrderedEliminator::new(&m);
        elim.eliminate(&rhs, &order);
        prop_assert_eq!(elim.rank(), naive.rank());
        prop_assert_eq!(elim.pivot_cols(), naive.pivot_cols());
        prop_assert_eq!(elim.residual_cols(), naive.residual_cols());
        prop_assert_eq!(elim.is_consistent(), naive.is_consistent());
        if elim.is_consistent() {
            // OSD-0, every weight-1 pattern, and a weight-2 prefix —
            // exactly the patterns the OSD-CS sweep enumerates.
            let t = elim.residual_cols().len();
            let mut patterns: Vec<Vec<usize>> = vec![vec![]];
            patterns.extend((0..t).map(|j| vec![j]));
            let lambda = t.min(6);
            for a in 0..lambda {
                for b in (a + 1)..lambda {
                    patterns.push(vec![a, b]);
                }
            }
            for p in &patterns {
                prop_assert_eq!(elim.solve_for_pattern(p), naive.solve_for_pattern(p));
            }
        }
    }

    #[test]
    fn eliminator_deltas_match_solve_for_pattern(
        inputs in bit_matrix(2..15, 2..50).prop_flat_map(|m| {
            let c = m.cols();
            (
                Just(m),
                0u64..1_000_000,
                proptest::collection::vec(proptest::bool::ANY, c),
            )
        })
    ) {
        let (m, order_seed, e_bits) = inputs;
        let order = shuffled_order(m.cols(), order_seed);
        // A syndrome in the image keeps the system consistent, so every
        // residual pattern has a solution to cross-check.
        let e = BitVec::from_bools(&e_bits);
        let rhs = m.mul_vec(&e);
        let mut elim = OrderedEliminator::new(&m);
        elim.eliminate(&rhs, &order);
        prop_assert!(elim.is_consistent());
        let base = elim.base_solution().clone();
        prop_assert_eq!(m.mul_vec(&base), rhs.clone());
        for j in 0..elim.residual_cols().len() {
            // delta_j = solve({j}) ⊕ solve({}) — and it lies in ker(H).
            let mut via_delta = base.clone();
            via_delta.xor_assign(elim.delta(j));
            prop_assert_eq!(&via_delta, &elim.solve_for_pattern(&[j]));
            prop_assert!(m.mul_vec(elim.delta(j)).is_zero());
        }
    }

    #[test]
    fn mul_batch_matches_per_shot_mul_vec(
        inputs in bit_matrix(1..20, 1..80).prop_flat_map(|m| {
            let c = m.cols();
            // Batch widths below, at, and straddling the 64-bit plane.
            let batches = (0usize..5).prop_flat_map(move |i| {
                let n = [1usize, 63, 64, 65, 128][i];
                proptest::collection::vec(bit_vec(c), n)
            });
            (Just(m), batches)
        })
    ) {
        let (m, batch) = inputs;
        let h = SparseBitMatrix::from_dense(&m);
        let outs = h.mul_batch(&batch);
        prop_assert_eq!(outs.len(), batch.len());
        for (out, v) in outs.iter().zip(&batch) {
            prop_assert_eq!(out, &h.mul_vec(v));
        }
    }

    #[test]
    fn kron_dimensions(a in bit_matrix(1..4, 1..4), b in bit_matrix(1..4, 1..4)) {
        let k = a.kron(&b);
        prop_assert_eq!(k.rows(), a.rows() * b.rows());
        prop_assert_eq!(k.cols(), a.cols() * b.cols());
        prop_assert_eq!(k.weight(), a.weight() * b.weight());
    }
}
