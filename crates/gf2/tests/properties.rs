//! Property tests for the GF(2) algebra laws.

use proptest::prelude::*;
use qldpc_gf2::{BitMatrix, BitVec};

fn bit_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = BitMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, c), r).prop_map(
            move |data| {
                let mut m = BitMatrix::zeros(data.len(), c);
                for (i, row) in data.iter().enumerate() {
                    for (j, &b) in row.iter().enumerate() {
                        if b {
                            m.set(i, j, true);
                        }
                    }
                }
                m
            },
        )
    })
}

fn bit_vec(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(proptest::bool::ANY, len).prop_map(|b| BitVec::from_bools(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xor_is_commutative_and_self_inverse(a in bit_vec(90), b in bit_vec(90)) {
        let ab = &a ^ &b;
        let ba = &b ^ &a;
        prop_assert_eq!(&ab, &ba);
        let back = &ab ^ &b;
        prop_assert_eq!(back, a);
    }

    #[test]
    fn dot_is_bilinear(a in bit_vec(70), b in bit_vec(70), c in bit_vec(70)) {
        // (a ⊕ b)·c = a·c ⊕ b·c over GF(2).
        let lhs = (&a ^ &b).dot(&c);
        let rhs = a.dot(&c) ^ b.dot(&c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn weight_matches_iter_ones(a in bit_vec(130)) {
        prop_assert_eq!(a.weight(), a.iter_ones().count());
    }

    #[test]
    fn matrix_vector_distributes(m in bit_matrix(1..6, 1..10), ) {
        let cols = m.cols();
        let strategy_runs = 1; // one pair per matrix case
        for _ in 0..strategy_runs {
            let a = BitVec::from_indices(cols, &[]);
            let ones: Vec<usize> = (0..cols).step_by(2).collect();
            let b = BitVec::from_indices(cols, &ones);
            let lhs = m.mul_vec(&(&a ^ &b));
            let rhs = &m.mul_vec(&a) ^ &m.mul_vec(&b);
            prop_assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn transpose_reverses_products(a in bit_matrix(1..5, 1..6), b_cols in 1usize..6) {
        // Build b with compatible shape.
        let b = BitMatrix::identity(a.cols()).hstack(&BitMatrix::zeros(a.cols(), b_cols));
        let lhs = a.mul(&b).transpose();
        let rhs = b.transpose().mul(&a.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rank_is_transpose_invariant(m in bit_matrix(1..7, 1..9)) {
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }

    #[test]
    fn kernel_is_orthogonal_to_row_space(m in bit_matrix(1..7, 1..9)) {
        let kernel = m.kernel();
        let rows = m.row_space_basis();
        for k in &kernel {
            prop_assert!(m.mul_vec(k).is_zero());
            for r in &rows {
                prop_assert!(!r.dot(k), "kernel vector not orthogonal to row space");
            }
        }
        prop_assert_eq!(kernel.len() + m.rank(), m.cols());
    }

    #[test]
    fn echelon_preserves_row_space(m in bit_matrix(1..6, 1..8)) {
        let ech = m.echelon(true);
        // Every original row must reduce to zero against the echelon rows.
        let basis = ech.matrix().row_space_basis();
        for r in 0..m.rows() {
            let mut v = m.row(r);
            for b in &basis {
                if let Some(p) = b.iter_ones().next() {
                    if v.get(p) {
                        v.xor_assign(b);
                    }
                }
            }
            prop_assert!(v.is_zero(), "row {r} escapes the echelon row space");
        }
    }

    #[test]
    fn ordered_echelon_solutions_satisfy(m in bit_matrix(2..6, 2..8), seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut e = BitVec::zeros(m.cols());
        for i in 0..m.cols() {
            if rng.random_bool(0.4) { e.set(i, true); }
        }
        let s = m.mul_vec(&e);
        let order: Vec<usize> = (0..m.cols()).collect();
        let ech = m.ordered_echelon(&s, &order);
        prop_assert!(ech.is_consistent());
        let sol = ech.solve_for_pattern(&[]);
        prop_assert_eq!(m.mul_vec(&sol), s);
    }

    #[test]
    fn kron_dimensions(a in bit_matrix(1..4, 1..4), b in bit_matrix(1..4, 1..4)) {
        let k = a.kron(&b);
        prop_assert_eq!(k.rows(), a.rows() * b.rows());
        prop_assert_eq!(k.cols(), a.cols() * b.cols());
        prop_assert_eq!(k.weight(), a.weight() * b.weight());
    }
}
