//! Dense bit-packed matrices over GF(2).

use crate::gauss::{Echelon, OrderedEchelon};
use crate::{words_for, BitVec, WORD_BITS};
use std::fmt;

/// A dense matrix over GF(2), stored row-major with 64 bits per word.
///
/// `BitMatrix` backs every construction-time computation in the workspace:
/// parity-check matrices are assembled here (via circulant and Kronecker
/// products), logical operators are extracted from kernels and quotient
/// spaces, and ordered-statistics decoding runs Gaussian elimination on a
/// dense working copy.
///
/// # Examples
///
/// ```
/// use qldpc_gf2::BitMatrix;
///
/// let id = BitMatrix::identity(4);
/// let shift = BitMatrix::cyclic_shift(4, 1);
/// // S^4 = I for a 4×4 cyclic shift.
/// let mut m = BitMatrix::identity(4);
/// for _ in 0..4 {
///     m = m.mul(&shift);
/// }
/// assert_eq!(m, id);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        Self {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Creates the `n × n` right-cyclic-shift matrix `S` with
    /// `S[i][(i+shift) mod n] = 1`.
    ///
    /// This matches the paper's convention `S_l = I_l >> 1`: each row of the
    /// identity is shifted right cyclically, so `S^k` represents the
    /// monomial `x^k` in circulant polynomial constructions.
    pub fn cyclic_shift(n: usize, shift: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, (i + shift) % n, true);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths. An empty slice yields a
    /// `0 × 0` matrix.
    pub fn from_rows(rows: &[BitVec]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut m = Self::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            m.row_mut_words(i).copy_from_slice(r.as_words());
        }
        m
    }

    /// Builds a matrix from a nested boolean description (row major).
    ///
    /// # Panics
    ///
    /// Panics if inner slices have differing lengths.
    pub fn from_dense(rows: &[&[u8]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut m = Self::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            for (j, &v) in r.iter().enumerate() {
                if v != 0 {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        (self.data[row * self.words_per_row + col / WORD_BITS] >> (col % WORD_BITS)) & 1 == 1
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        let w = row * self.words_per_row + col / WORD_BITS;
        let mask = 1u64 << (col % WORD_BITS);
        if value {
            self.data[w] |= mask;
        } else {
            self.data[w] &= !mask;
        }
    }

    /// Read-only view of a row's words.
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        &self.data[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    #[inline]
    pub(crate) fn row_mut_words(&mut self, row: usize) -> &mut [u64] {
        &mut self.data[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// Words per row of the packed storage.
    #[inline]
    pub(crate) fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The whole packed storage, row-major with
    /// [`Self::words_per_row`] words per row — the elimination
    /// workspace's hot loops index it directly to keep row operations
    /// free of per-access offset arithmetic.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Copies row `row` into an owned [`BitVec`].
    pub fn row(&self, row: usize) -> BitVec {
        let mut v = BitVec::zeros(self.cols);
        v.as_words_mut().copy_from_slice(self.row_words(row));
        v
    }

    /// Copies column `col` into an owned [`BitVec`] of length `rows`.
    pub fn column(&self, col: usize) -> BitVec {
        let mut v = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            if self.get(r, col) {
                v.set(r, true);
            }
        }
        v
    }

    /// Iterates over owned copies of the rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = BitVec> + '_ {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// XORs row `src` of `other` into row `dst` of `self`
    /// (`self[dst] ^= other[src]`) — the word-parallel accumulate used
    /// by the bit-sliced batch syndrome kernel, routed through the
    /// runtime-dispatched wide XOR in `qldpc-simd` (exact integer ops —
    /// every dispatch target produces identical words).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or either row index is out of
    /// bounds.
    #[inline]
    pub fn xor_row_from(&mut self, other: &Self, src: usize, dst: usize) {
        assert_eq!(self.cols, other.cols, "xor_row_from column count mismatch");
        assert!(
            src < other.rows && dst < self.rows,
            "row index out of bounds"
        );
        let wpr = self.words_per_row;
        let s = &other.data[src * wpr..(src + 1) * wpr];
        let d = &mut self.data[dst * wpr..(dst + 1) * wpr];
        qldpc_simd::xor_words(d, s);
    }

    /// XORs row `src` into row `dst` (`dst ^= src`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(
            src < self.rows && dst < self.rows,
            "row index out of bounds"
        );
        if src == dst {
            // r ^= r zeroes the row; callers never want that implicitly.
            panic!("xor_row_into called with src == dst");
        }
        let wpr = self.words_per_row;
        let (a, b) = if src < dst {
            let (head, tail) = self.data.split_at_mut(dst * wpr);
            (&head[src * wpr..src * wpr + wpr], &mut tail[..wpr])
        } else {
            let (head, tail) = self.data.split_at_mut(src * wpr);
            let dst_slice = &mut head[dst * wpr..dst * wpr + wpr];
            // Need the src row from tail; reborrow as immutable.
            (&tail[..wpr], dst_slice)
        };
        qldpc_simd::xor_words(b, a);
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let wpr = self.words_per_row;
        for k in 0..wpr {
            self.data.swap(a * wpr + k, b * wpr + k);
        }
    }

    /// Returns `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&w| w == 0)
    }

    /// Total number of ones.
    pub fn weight(&self) -> usize {
        qldpc_simd::popcount_words(&self.data) as usize
    }

    /// Matrix transpose.
    ///
    /// Runs the word-parallel 64×64 block-transpose kernel — the same
    /// primitive the bit-sliced batch syndrome check and the OSD
    /// elimination workspace are built on.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        self.transpose_into(&mut t);
        t
    }

    /// Transposes into a preallocated `cols × rows` matrix, overwriting
    /// its contents. Lets hot loops reuse the destination's storage.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not shaped `self.cols() × self.rows()`.
    pub fn transpose_into(&self, out: &mut Self) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.rows),
            "transpose destination must be {}×{}",
            self.cols,
            self.rows
        );
        out.data.fill(0);
        let mut block = [0u64; WORD_BITS];
        for rb in 0..self.rows.div_ceil(WORD_BITS) {
            let r0 = rb * WORD_BITS;
            let rmax = (self.rows - r0).min(WORD_BITS);
            for cb in 0..self.words_per_row {
                for (i, b) in block.iter_mut().enumerate().take(rmax) {
                    *b = self.data[(r0 + i) * self.words_per_row + cb];
                }
                if block[..rmax].iter().all(|&w| w == 0) {
                    continue; // destination is already zero
                }
                block[rmax..].fill(0);
                transpose64(&mut block);
                let out_r0 = cb * WORD_BITS;
                let out_rmax = (out.rows - out_r0).min(WORD_BITS);
                for (i, &b) in block.iter().enumerate().take(out_rmax) {
                    out.data[(out_r0 + i) * out.words_per_row + rb] = b;
                }
            }
        }
    }

    /// Matrix product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matrix product dimension mismatch: {}×{} · {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            let out_row = out.row_mut_words(r);
            for k in row.iter_ones() {
                let other_row = &other.data[k * other.words_per_row..(k + 1) * other.words_per_row];
                for (d, s) in out_row.iter_mut().zip(other_row) {
                    *d ^= s;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "matrix–vector dimension mismatch");
        let mut out = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            let mut acc = 0u64;
            for (a, b) in self.row_words(r).iter().zip(v.as_words()) {
                acc ^= a & b;
            }
            if acc.count_ones() % 2 == 1 {
                out.set(r, true);
            }
        }
        out
    }

    /// Kronecker product `self ⊗ other`.
    pub fn kron(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            let row1 = self.row(r1);
            for c1 in row1.iter_ones() {
                for r2 in 0..other.rows {
                    let row2 = other.row(r2);
                    for c2 in row2.iter_ones() {
                        out.set(r1 * other.rows + r2, c1 * other.cols + c2, true);
                    }
                }
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hstack row count mismatch");
        let mut out = Self::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let a = self.row(r);
            let b = other.row(r);
            let joined = a.concat(&b);
            out.row_mut_words(r).copy_from_slice(joined.as_words());
        }
        out
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vstack column count mismatch");
        let mut out = Self::zeros(self.rows + other.rows, self.cols);
        out.data[..self.data.len()].copy_from_slice(&self.data);
        out.data[self.data.len()..].copy_from_slice(&other.data);
        out
    }

    /// Returns the sub-matrix formed by the given columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of bounds.
    pub fn select_columns(&self, cols: &[usize]) -> Self {
        let mut out = Self::zeros(self.rows, cols.len());
        for (j, &c) in cols.iter().enumerate() {
            assert!(c < self.cols, "column index {c} out of bounds");
            for r in 0..self.rows {
                if self.get(r, c) {
                    out.set(r, j, true);
                }
            }
        }
        out
    }

    /// Rank over GF(2).
    pub fn rank(&self) -> usize {
        Echelon::reduce(self.clone(), false).rank()
    }

    /// Basis of the kernel (right null space) `{x : self·x = 0}`.
    ///
    /// Returns one `BitVec` of length `cols()` per basis vector.
    pub fn kernel(&self) -> Vec<BitVec> {
        let ech = Echelon::reduce(self.clone(), true);
        let pivots = ech.pivot_cols();
        let mut is_pivot = vec![false; self.cols];
        let mut pivot_row_of_col = vec![usize::MAX; self.cols];
        for (row, &col) in pivots.iter().enumerate() {
            is_pivot[col] = true;
            pivot_row_of_col[col] = row;
        }
        let reduced = ech.matrix();
        let mut basis = Vec::new();
        for (free, _) in is_pivot.iter().enumerate().filter(|&(_, &piv)| !piv) {
            let mut v = BitVec::zeros(self.cols);
            v.set(free, true);
            // In RREF, each pivot row reads: x_pivot + Σ (free coeffs) = 0.
            for (&pc, row) in pivots.iter().zip(0..) {
                if reduced.get(row, free) {
                    v.set(pc, true);
                }
            }
            basis.push(v);
        }
        basis
    }

    /// A basis for the row space, as owned vectors.
    pub fn row_space_basis(&self) -> Vec<BitVec> {
        let ech = Echelon::reduce(self.clone(), false);
        let rank = ech.rank();
        let m = ech.matrix();
        (0..rank).map(|r| m.row(r)).collect()
    }

    /// Runs plain Gaussian elimination; see [`Echelon::reduce`].
    pub fn echelon(&self, reduced: bool) -> Echelon {
        Echelon::reduce(self.clone(), reduced)
    }

    /// Runs column-ordered Gaussian elimination on `[self | rhs]`;
    /// see [`OrderedEchelon::reduce`]. Used by OSD.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.rows()` or `order.len() != self.cols()`.
    pub fn ordered_echelon(&self, rhs: &BitVec, order: &[usize]) -> OrderedEchelon {
        OrderedEchelon::reduce(self.clone(), rhs, order)
    }

    /// Extends a basis of the row space of `sub` to a basis of the row space
    /// of `[sub; extra]`, returning only the *added* vectors.
    ///
    /// This is the quotient-space computation used to extract logical
    /// operators: with `sub` spanning the stabilizer/gauge rows and `extra`
    /// spanning the centralizer kernel, the returned vectors represent a
    /// basis of `rowspace(extra) / rowspace(sub)`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn quotient_basis(sub: &Self, extra: &Self) -> Vec<BitVec> {
        assert_eq!(sub.cols, extra.cols, "quotient_basis column mismatch");
        let cols = sub.cols;
        // Maintain an RREF-like accumulator: rows with known pivot columns.
        let mut acc: Vec<(usize, BitVec)> = Vec::new();
        let reduce = |mut v: BitVec, acc: &Vec<(usize, BitVec)>| -> BitVec {
            for (p, row) in acc {
                if v.get(*p) {
                    v.xor_assign(row);
                }
            }
            v
        };
        let insert = |v: BitVec, acc: &mut Vec<(usize, BitVec)>| -> bool {
            if let Some(p) = v.iter_ones().next() {
                acc.push((p, v));
                true
            } else {
                false
            }
        };
        for r in 0..sub.rows {
            let v = reduce(sub.row(r), &acc);
            insert(v, &mut acc);
        }
        let mut added = Vec::new();
        for r in 0..extra.rows {
            let v = reduce(extra.row(r), &acc);
            if !v.is_zero() {
                added.push(extra.row(r));
                insert(v, &mut acc);
            }
        }
        let _ = cols;
        added
    }
}

/// Transposes a 64×64 bit block held as one `u64` per row, in place.
///
/// Hacker's Delight §7-3, adapted to this crate's LSB-first column
/// numbering (bit `c` of word `r` is entry `(r, c)`): at each step the
/// upper-right and lower-left `j×j` quadrants of every `2j×2j` sub-block
/// are swapped with three XORs per word pair.
fn transpose64(a: &mut [u64; WORD_BITS]) {
    let mut j = WORD_BITS / 2;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < WORD_BITS {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}×{})", self.rows, self.cols)?;
        let max_rows = 16.min(self.rows);
        for r in 0..max_rows {
            writeln!(f, "  {}", self.row(r))?;
        }
        if self.rows > max_rows {
            writeln!(f, "  … ({} more rows)", self.rows - max_rows)?;
        }
        Ok(())
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            writeln!(f, "{}", self.row(r))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let id = BitMatrix::identity(5);
        assert_eq!(id.rank(), 5);
        assert!(id.kernel().is_empty());
        let v = BitVec::from_indices(5, &[1, 3]);
        assert_eq!(id.mul_vec(&v), v);
    }

    #[test]
    fn cyclic_shift_order() {
        let s = BitMatrix::cyclic_shift(7, 1);
        let mut m = s.clone();
        for _ in 0..6 {
            m = m.mul(&s);
        }
        assert_eq!(m, BitMatrix::identity(7));
    }

    #[test]
    fn transpose_involution() {
        let m = BitMatrix::from_dense(&[&[1, 0, 1, 1], &[0, 1, 1, 0], &[1, 1, 0, 0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_matches_per_bit_across_block_boundaries() {
        // 70×130 spans multiple 64×64 blocks in both directions with
        // ragged edges; fill deterministically and check every entry.
        let (rows, cols) = (70, 130);
        let mut m = BitMatrix::zeros(rows, cols);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for r in 0..rows {
            for c in 0..cols {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state & 1 == 1 {
                    m.set(r, c, true);
                }
            }
        }
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (cols, rows));
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(t.get(c, r), m.get(r, c), "mismatch at ({r},{c})");
            }
        }
        assert_eq!(t.transpose(), m);
        // The reusable variant overwrites stale destination contents.
        let mut out = BitMatrix::identity(cols).select_columns(&(0..rows).collect::<Vec<_>>());
        m.transpose_into(&mut out);
        assert_eq!(out, t);
    }

    #[test]
    fn mul_matches_manual() {
        let a = BitMatrix::from_dense(&[&[1, 1, 0], &[0, 1, 1]]);
        let b = BitMatrix::from_dense(&[&[1, 0], &[1, 1], &[0, 1]]);
        let c = a.mul(&b);
        // c = [[0,1],[1,0]]
        assert_eq!(c, BitMatrix::from_dense(&[&[0, 1], &[1, 0]]));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = BitMatrix::from_dense(&[&[1, 1, 0, 1], &[0, 1, 1, 0], &[1, 0, 0, 1]]);
        let v = BitVec::from_indices(4, &[0, 3]);
        let as_mat = BitMatrix::from_rows(std::slice::from_ref(&v)).transpose();
        let prod = a.mul(&as_mat);
        let mv = a.mul_vec(&v);
        for r in 0..3 {
            assert_eq!(prod.get(r, 0), mv.get(r));
        }
    }

    #[test]
    fn kernel_vectors_are_annihilated() {
        let m = BitMatrix::from_dense(&[&[1, 1, 0, 0, 1], &[0, 1, 1, 1, 0], &[1, 0, 1, 1, 1]]);
        let k = m.kernel();
        assert_eq!(k.len(), 5 - m.rank());
        for v in &k {
            assert!(m.mul_vec(v).is_zero(), "kernel vector not annihilated");
        }
    }

    #[test]
    fn kron_dimensions_and_structure() {
        let a = BitMatrix::identity(2);
        let b = BitMatrix::from_dense(&[&[1, 1], &[0, 1]]);
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        assert!(k.get(0, 0) && k.get(0, 1) && k.get(1, 1));
        assert!(k.get(2, 2) && k.get(2, 3) && k.get(3, 3));
        assert!(!k.get(0, 2) && !k.get(2, 0));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = AC ⊗ BD
        let a = BitMatrix::from_dense(&[&[1, 0], &[1, 1]]);
        let b = BitMatrix::from_dense(&[&[0, 1], &[1, 1]]);
        let c = BitMatrix::from_dense(&[&[1, 1], &[0, 1]]);
        let d = BitMatrix::from_dense(&[&[1, 0], &[1, 0]]);
        let lhs = a.kron(&b).mul(&c.kron(&d));
        let rhs = a.mul(&c).kron(&b.mul(&d));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = BitMatrix::identity(2);
        let b = BitMatrix::zeros(2, 3);
        let h = a.hstack(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        let c = BitMatrix::zeros(4, 5);
        let v = h.vstack(&c);
        assert_eq!((v.rows(), v.cols()), (6, 5));
        assert!(v.get(0, 0) && v.get(1, 1));
    }

    #[test]
    fn select_columns_picks_in_order() {
        let m = BitMatrix::from_dense(&[&[1, 0, 1], &[0, 1, 1]]);
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s, BitMatrix::from_dense(&[&[1, 1], &[1, 0]]));
    }

    #[test]
    fn quotient_basis_counts() {
        // rowspace(sub) = span{1100, 0011}; extra adds 1000 (and 0100 = 1000+1100 dependent after).
        let sub = BitMatrix::from_dense(&[&[1, 1, 0, 0], &[0, 0, 1, 1]]);
        let extra = BitMatrix::from_dense(&[&[1, 0, 0, 0], &[0, 1, 0, 0], &[1, 1, 1, 1]]);
        let q = BitMatrix::quotient_basis(&sub, &extra);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn row_ops() {
        let mut m = BitMatrix::from_dense(&[&[1, 1, 0], &[0, 1, 1]]);
        m.xor_row_into(0, 1);
        assert_eq!(m.row(1).to_string(), "101");
        m.swap_rows(0, 1);
        assert_eq!(m.row(0).to_string(), "101");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_dimension_mismatch_panics() {
        BitMatrix::zeros(2, 3).mul(&BitMatrix::zeros(2, 3));
    }

    #[test]
    fn row_space_basis_spans() {
        let m = BitMatrix::from_dense(&[&[1, 1, 0], &[0, 1, 1], &[1, 0, 1]]);
        // third row = sum of first two
        let basis = m.row_space_basis();
        assert_eq!(basis.len(), 2);
    }
}
