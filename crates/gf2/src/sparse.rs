//! Compressed sparse binary matrices for Tanner graphs.

use crate::{BitMatrix, BitVec};
use std::fmt;

/// A sparse binary matrix in compressed-sparse-row form, with a
/// column-major index built eagerly.
///
/// This is the representation belief propagation runs on: rows are check
/// nodes, columns are variable nodes, and both adjacency directions are
/// needed every iteration. The matrix is immutable after construction.
///
/// # Examples
///
/// ```
/// use qldpc_gf2::{BitVec, SparseBitMatrix};
///
/// // Repetition-code checks: (0,1) and (1,2).
/// let h = SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]]);
/// let e = BitVec::from_indices(3, &[1]);
/// let s = h.mul_vec(&e);
/// assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SparseBitMatrix {
    rows: usize,
    cols: usize,
    /// CSR: `row_ptr[r]..row_ptr[r+1]` indexes `col_idx`.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    /// CSC: `col_ptr[c]..col_ptr[c+1]` indexes `row_idx`.
    col_ptr: Vec<u32>,
    row_idx: Vec<u32>,
}

impl SparseBitMatrix {
    /// Builds a sparse matrix from per-row sorted-or-unsorted column lists.
    ///
    /// Column indices are sorted and deduplicated per row (a duplicated
    /// entry over GF(2) would cancel; passing duplicates is treated as a
    /// caller error).
    ///
    /// # Panics
    ///
    /// Panics if `row_cols.len() != rows`, if any column index is `>= cols`,
    /// or if a row contains a duplicate column index.
    pub fn from_row_indices(rows: usize, cols: usize, row_cols: &[Vec<usize>]) -> Self {
        assert_eq!(row_cols.len(), rows, "row list length must equal row count");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0u32);
        for (r, cs) in row_cols.iter().enumerate() {
            let mut sorted = cs.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert!(w[0] != w[1], "duplicate column {} in row {r}", w[0]);
            }
            for &c in &sorted {
                assert!(c < cols, "column index {c} out of bounds in row {r}");
                col_idx.push(c as u32);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Self::from_csr(rows, cols, row_ptr, col_idx)
    }

    /// Converts a dense matrix into sparse form.
    pub fn from_dense(m: &BitMatrix) -> Self {
        let row_cols: Vec<Vec<usize>> = (0..m.rows())
            .map(|r| m.row(r).iter_ones().collect())
            .collect();
        Self::from_row_indices(m.rows(), m.cols(), &row_cols)
    }

    fn from_csr(rows: usize, cols: usize, row_ptr: Vec<u32>, col_idx: Vec<u32>) -> Self {
        // Build CSC by counting sort.
        let mut counts = vec![0u32; cols + 1];
        for &c in &col_idx {
            counts[c as usize + 1] += 1;
        }
        for c in 0..cols {
            counts[c + 1] += counts[c];
        }
        let col_ptr = counts.clone();
        let mut cursor = counts;
        let mut row_idx = vec![0u32; col_idx.len()];
        for r in 0..rows {
            for k in row_ptr[r]..row_ptr[r + 1] {
                let c = col_idx[k as usize] as usize;
                row_idx[cursor[c] as usize] = r as u32;
                cursor[c] += 1;
            }
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            col_ptr,
            row_idx,
        }
    }

    /// Number of rows (check nodes).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (variable nodes).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored ones.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `r`, sorted ascending.
    #[inline]
    pub fn row_support(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Row indices of column `c`, sorted ascending.
    #[inline]
    pub fn col_support(&self, c: usize) -> &[u32] {
        &self.row_idx[self.col_ptr[c] as usize..self.col_ptr[c + 1] as usize]
    }

    /// Degree (weight) of row `r`.
    #[inline]
    pub fn row_degree(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Degree (weight) of column `c`.
    #[inline]
    pub fn col_degree(&self, c: usize) -> usize {
        (self.col_ptr[c + 1] - self.col_ptr[c]) as usize
    }

    /// Maximum row degree across the matrix (0 for an empty matrix).
    pub fn max_row_degree(&self) -> usize {
        (0..self.rows)
            .map(|r| self.row_degree(r))
            .max()
            .unwrap_or(0)
    }

    /// Maximum column degree across the matrix (0 for an empty matrix).
    pub fn max_col_degree(&self) -> usize {
        (0..self.cols)
            .map(|c| self.col_degree(c))
            .max()
            .unwrap_or(0)
    }

    /// Sparse matrix–vector product `self · v` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "matrix–vector dimension mismatch");
        let mut out = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            let mut parity = false;
            for &c in self.row_support(r) {
                parity ^= v.get(c as usize);
            }
            if parity {
                out.set(r, true);
            }
        }
        out
    }

    /// Bit-sliced batched product: `self · v` for every `v` in `vecs`.
    ///
    /// The batch is transposed into 64-shot *bit-planes* (one `BitVec`
    /// of batch-width bits per variable), each check row XORs the planes
    /// of its support — computing 64 shots' worth of that check per word
    /// operation — and the result is transposed back into per-shot
    /// syndromes. Cost is `O(nnz · B/64)` word-XORs plus two block
    /// transposes, versus `O(nnz)` bit probes *per shot* for a
    /// [`Self::mul_vec`] loop. Results are bit-identical to calling
    /// `mul_vec` on each vector.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from `self.cols()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qldpc_gf2::{BitVec, SparseBitMatrix};
    ///
    /// let h = SparseBitMatrix::from_row_indices(2, 3, &[vec![0, 1], vec![1, 2]]);
    /// let batch = vec![BitVec::from_indices(3, &[1]), BitVec::from_indices(3, &[0, 2])];
    /// let syndromes = h.mul_batch(&batch);
    /// assert_eq!(syndromes[0], h.mul_vec(&batch[0]));
    /// assert_eq!(syndromes[1], h.mul_vec(&batch[1]));
    /// ```
    pub fn mul_batch(&self, vecs: &[BitVec]) -> Vec<BitVec> {
        for v in vecs {
            assert_eq!(v.len(), self.cols, "matrix–vector dimension mismatch");
        }
        if vecs.is_empty() {
            return Vec::new();
        }
        let planes = BitMatrix::from_rows(vecs).transpose(); // cols × B
        let mut out_planes = BitMatrix::zeros(self.rows, vecs.len());
        for r in 0..self.rows {
            for &c in self.row_support(r) {
                out_planes.xor_row_from(&planes, c as usize, r);
            }
        }
        let out = out_planes.transpose(); // B × rows
        (0..vecs.len()).map(|i| out.row(i)).collect()
    }

    /// Sparse product with a *sparse* vector given as sorted one-indices:
    /// returns the syndrome `self · t` where `t` has ones at `support`.
    ///
    /// This is the SpMSpV the paper uses for trial-syndrome generation:
    /// cost is `O(Σ_{i∈support} coldeg(i))`.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= cols()`.
    pub fn mul_sparse_vec(&self, support: &[usize]) -> BitVec {
        let mut out = BitVec::zeros(self.rows);
        for &c in support {
            assert!(c < self.cols, "support index {c} out of bounds");
            for &r in self.col_support(c) {
                out.flip(r as usize);
            }
        }
        out
    }

    /// Transposed product `selfᵀ · v` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    pub fn mul_vec_transpose(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.rows, "matrix–vector dimension mismatch");
        let mut out = BitVec::zeros(self.cols);
        for c in 0..self.cols {
            let mut parity = false;
            for &r in self.col_support(c) {
                parity ^= v.get(r as usize);
            }
            if parity {
                out.set(c, true);
            }
        }
        out
    }

    /// Expands into a dense matrix.
    pub fn to_dense(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for &c in self.row_support(r) {
                m.set(r, c as usize, true);
            }
        }
        m
    }

    /// Returns the transpose as a new sparse matrix.
    pub fn transpose(&self) -> Self {
        let row_cols: Vec<Vec<usize>> = (0..self.cols)
            .map(|c| self.col_support(c).iter().map(|&r| r as usize).collect())
            .collect();
        Self::from_row_indices(self.cols, self.rows, &row_cols)
    }
}

impl fmt::Debug for SparseBitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SparseBitMatrix({}×{}, nnz={}, max_row_deg={}, max_col_deg={})",
            self.rows,
            self.cols,
            self.nnz(),
            self.max_row_degree(),
            self.max_col_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> SparseBitMatrix {
        SparseBitMatrix::from_row_indices(3, 4, &[vec![0, 1], vec![1, 2, 3], vec![0, 3]])
    }

    #[test]
    fn shape_and_degrees() {
        let h = h();
        assert_eq!((h.rows(), h.cols(), h.nnz()), (3, 4, 7));
        assert_eq!(h.row_degree(1), 3);
        assert_eq!(h.col_degree(3), 2);
        assert_eq!(h.max_row_degree(), 3);
        assert_eq!(h.max_col_degree(), 2);
    }

    #[test]
    fn col_support_matches_row_support() {
        let h = h();
        for r in 0..h.rows() {
            for &c in h.row_support(r) {
                assert!(h.col_support(c as usize).contains(&(r as u32)));
            }
        }
    }

    #[test]
    fn mul_vec_matches_dense() {
        let h = h();
        let d = h.to_dense();
        for mask in 0..16u32 {
            let v = BitVec::from_bools(&[
                (mask & 1) != 0,
                (mask & 2) != 0,
                (mask & 4) != 0,
                (mask & 8) != 0,
            ]);
            assert_eq!(h.mul_vec(&v), d.mul_vec(&v));
        }
    }

    #[test]
    fn mul_batch_matches_per_shot_mul_vec() {
        // Use a matrix wide enough to exercise multiple words and ragged
        // batch sizes straddling the 64-shot plane width.
        let cols = 150;
        let rows = 70;
        let row_cols: Vec<Vec<usize>> = (0..rows)
            .map(|r| (0..cols).filter(|c| (r * 31 + c * 17) % 7 == 0).collect())
            .collect();
        let h = SparseBitMatrix::from_row_indices(rows, cols, &row_cols);
        for b in [0usize, 1, 63, 64, 65, 128] {
            let batch: Vec<BitVec> = (0..b)
                .map(|i| {
                    BitVec::from_bools(
                        &(0..cols)
                            .map(|c| (i * 13 + c * 5) % 3 == 0)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let got = h.mul_batch(&batch);
            assert_eq!(got.len(), b);
            for (g, v) in got.iter().zip(&batch) {
                assert_eq!(g, &h.mul_vec(v), "batch size {b} diverges");
            }
        }
    }

    #[test]
    fn mul_sparse_vec_matches_mul_vec() {
        let h = h();
        let support = [1usize, 3];
        let v = BitVec::from_indices(4, &support);
        assert_eq!(h.mul_sparse_vec(&support), h.mul_vec(&v));
    }

    #[test]
    fn transpose_roundtrip() {
        let h = h();
        assert_eq!(h.transpose().transpose(), h);
        assert_eq!(h.transpose().to_dense(), h.to_dense().transpose());
    }

    #[test]
    fn mul_vec_transpose_matches_dense() {
        let h = h();
        let d = h.to_dense().transpose();
        let v = BitVec::from_indices(3, &[0, 2]);
        assert_eq!(h.mul_vec_transpose(&v), d.mul_vec(&v));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        SparseBitMatrix::from_row_indices(1, 3, &[vec![1, 1]]);
    }

    #[test]
    fn from_dense_roundtrip() {
        let m = BitMatrix::from_dense(&[&[1, 0, 1], &[0, 1, 1]]);
        assert_eq!(SparseBitMatrix::from_dense(&m).to_dense(), m);
    }
}
