//! Bit-packed linear algebra over GF(2).
//!
//! This crate provides the dense and sparse binary-matrix machinery that the
//! rest of the workspace is built on:
//!
//! * [`BitVec`] — a bit-packed vector over GF(2),
//! * [`BitMatrix`] — a dense bit-packed matrix with row operations, products,
//!   Kronecker products, rank / kernel / row-space computations,
//! * [`SparseBitMatrix`] — a compressed-sparse-row binary matrix used for
//!   Tanner graphs and fast syndrome computation,
//! * [`Echelon`] — the result of Gaussian elimination, including the
//!   column-ordered variant needed by ordered-statistics decoding (OSD),
//! * [`OrderedEliminator`] — the reusable word-parallel workspace behind
//!   the OSD decode fast path (permute-once column gather, augmented
//!   rhs, incremental per-residual-column solution deltas).
//!
//! # Examples
//!
//! ```
//! use qldpc_gf2::{BitMatrix, BitVec};
//!
//! // The parity-check matrix of the 3-bit repetition code.
//! let h = BitMatrix::from_rows(&[
//!     BitVec::from_indices(3, &[0, 1]),
//!     BitVec::from_indices(3, &[1, 2]),
//! ]);
//! assert_eq!(h.rank(), 2);
//! let kernel = h.kernel();
//! assert_eq!(kernel.len(), 1); // the all-ones codeword
//! assert_eq!(kernel[0].weight(), 3);
//! ```

mod bitvec;
mod dense;
mod gauss;
mod sparse;

pub use bitvec::BitVec;
pub use dense::BitMatrix;
pub use gauss::{Echelon, OrderedEchelon, OrderedEliminator};
pub use sparse::SparseBitMatrix;

/// Number of bits in one storage word.
pub(crate) const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}
