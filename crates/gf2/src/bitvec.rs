//! Bit-packed vectors over GF(2).

use crate::{words_for, WORD_BITS};
use std::fmt;
use std::ops::{BitXor, BitXorAssign};

/// A fixed-length vector over GF(2), packed 64 bits per word.
///
/// `BitVec` is the universal currency of the workspace: error patterns,
/// syndromes, codewords, logical-operator supports and matrix rows are all
/// `BitVec`s. Addition over GF(2) is XOR ([`BitXorAssign`]), and the inner
/// product is the parity of the AND ([`BitVec::dot`]).
///
/// # Examples
///
/// ```
/// use qldpc_gf2::BitVec;
///
/// let mut e = BitVec::zeros(8);
/// e.set(3, true);
/// e.set(5, true);
/// assert_eq!(e.weight(), 2);
/// assert_eq!(e.iter_ones().collect::<Vec<_>>(), vec![3, 5]);
///
/// let f = BitVec::from_indices(8, &[5, 6]);
/// assert!(e.dot(&f)); // overlap {5} has odd parity
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of the given length.
    ///
    /// # Examples
    ///
    /// ```
    /// let v = qldpc_gf2::BitVec::zeros(100);
    /// assert_eq!(v.len(), 100);
    /// assert_eq!(v.weight(), 0);
    /// ```
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// Creates a vector with ones exactly at `indices`.
    ///
    /// Repeated indices are idempotent (the bit is simply set again).
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut v = Self::zeros(len);
        for &i in indices {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector directly from its packed word representation —
    /// the inverse of [`Self::as_words`], used by serializers (e.g. the
    /// wire codec) that ship the words verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` is not exactly `ceil(len / 64)` or if any
    /// bit beyond `len` is set in the final word (the zero-padding
    /// invariant every `BitVec` operation relies on). Wire-facing
    /// callers must validate untrusted input *before* constructing.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), words_for(len), "word count mismatch");
        if !len.is_multiple_of(WORD_BITS) {
            let tail = words.last().copied().unwrap_or(0);
            assert_eq!(
                tail >> (len % WORD_BITS),
                0,
                "set bits beyond the vector length"
            );
        }
        Self { len, words }
    }

    /// Creates a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Parses a vector from a string of `'0'`/`'1'` characters.
    ///
    /// # Examples
    ///
    /// ```
    /// let v = qldpc_gf2::BitVec::from_bit_str("01101");
    /// assert_eq!(v.weight(), 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the string contains characters other than `'0'` and `'1'`.
    pub fn from_bit_str(s: &str) -> Self {
        let bits: Vec<bool> = s
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid bit character {other:?} in bit string"),
            })
            .collect();
        Self::from_bools(&bits)
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            self.words[index / WORD_BITS] |= mask;
        } else {
            self.words[index / WORD_BITS] &= !mask;
        }
    }

    /// Flips the bit at `index`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn flip(&mut self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % WORD_BITS);
        self.words[index / WORD_BITS] ^= mask;
        self.words[index / WORD_BITS] & mask != 0
    }

    /// Number of ones in the vector (Hamming weight).
    #[inline]
    pub fn weight(&self) -> usize {
        qldpc_simd::popcount_words(&self.words) as usize
    }

    /// Returns `true` if every bit is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets every bit to zero, keeping the length.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Inner product over GF(2): the parity of `|self ∧ other|`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[inline]
    pub fn dot(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "dot product of unequal lengths");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over all bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Read-only view of the backing words. The final word's unused high
    /// bits are always zero.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable view of the backing words.
    ///
    /// Callers must keep the unused high bits of the final word zero; all
    /// `BitVec` constructors and operations preserve this invariant.
    #[inline]
    pub(crate) fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Overwrites `self` with the contents of `other` without
    /// reallocating — the hot-loop alternative to `clone()` when a
    /// scratch vector is reused across iterations.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[inline]
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "copy_from of unequal lengths");
        self.words.copy_from_slice(&other.words);
    }

    /// XORs `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[inline]
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "xor of unequal lengths");
        qldpc_simd::xor_words(&mut self.words, &other.words);
    }

    /// Concatenates two vectors.
    pub fn concat(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.len + other.len);
        for i in self.iter_ones() {
            out.set(i, true);
        }
        for i in other.iter_ones() {
            out.set(self.len + i, true);
        }
        out
    }

    /// Returns the sub-vector covering `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.end <= self.len, "slice range out of bounds");
        let mut out = Self::zeros(range.len());
        for (j, i) in range.clone().enumerate() {
            if self.get(i) {
                out.set(j, true);
            }
        }
        out
    }
}

/// Iterator over set-bit indices produced by [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_idx];
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign(rhs);
    }
}

impl BitXor<&BitVec> for &BitVec {
    type Output = BitVec;

    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(rhs);
        out
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitVec(len={}, ones={:?})",
            self.len,
            self.iter_ones().collect::<Vec<_>>()
        )
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        assert_eq!(v.weight(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(200);
        for i in [0, 63, 64, 127, 128, 199] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.weight(), 6);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.weight(), 5);
    }

    #[test]
    fn flip_toggles() {
        let mut v = BitVec::zeros(10);
        assert!(v.flip(3));
        assert!(!v.flip(3));
        assert!(v.is_zero());
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let v = BitVec::from_indices(300, &[0, 63, 64, 65, 255, 299]);
        assert_eq!(
            v.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 65, 255, 299]
        );
    }

    #[test]
    fn dot_is_overlap_parity() {
        let a = BitVec::from_indices(100, &[1, 2, 3, 70]);
        let b = BitVec::from_indices(100, &[2, 3, 70, 71]);
        // overlap {2,3,70} odd
        assert!(a.dot(&b));
        let c = BitVec::from_indices(100, &[2, 3]);
        assert!(!a.dot(&c));
    }

    #[test]
    fn xor_is_addition() {
        let a = BitVec::from_indices(64, &[0, 1, 2]);
        let b = BitVec::from_indices(64, &[2, 3]);
        let c = &a ^ &b;
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn from_bit_str_display_roundtrip() {
        let s = "0110100101";
        let v = BitVec::from_bit_str(s);
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn concat_and_slice() {
        let a = BitVec::from_indices(5, &[1, 4]);
        let b = BitVec::from_indices(3, &[0]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 8);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1, 4, 5]);
        assert_eq!(c.slice(4..8).iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(c.slice(5..8).iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(4).get(4);
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn dot_length_mismatch_panics() {
        BitVec::zeros(4).dot(&BitVec::zeros(5));
    }

    #[test]
    fn from_iterator_collects() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.weight(), 2);
    }
}
