//! Gaussian elimination over GF(2).
//!
//! Two engines are provided:
//!
//! * [`Echelon`] — plain (optionally reduced) row echelon form with pivot
//!   tracking, used for rank / kernel / row-space computations,
//! * [`OrderedEchelon`] — elimination that tries columns in a caller-supplied
//!   order while carrying a right-hand side, which is exactly the primitive
//!   ordered-statistics decoding (OSD) needs: the first `rank` linearly
//!   independent columns in reliability order become the *information set*.

use crate::{BitMatrix, BitVec, WORD_BITS};

/// Result of (reduced) row echelon elimination.
///
/// # Examples
///
/// ```
/// use qldpc_gf2::{BitMatrix, Echelon};
///
/// let m = BitMatrix::from_dense(&[&[1, 1, 0], &[1, 1, 1]]);
/// let ech = m.echelon(true);
/// assert_eq!(ech.rank(), 2);
/// assert_eq!(ech.pivot_cols(), &[0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Echelon {
    matrix: BitMatrix,
    pivot_cols: Vec<usize>,
}

impl Echelon {
    /// Eliminates `matrix` in place (consuming it) scanning columns left to
    /// right. With `reduced = true` the result is in *reduced* row echelon
    /// form (entries above pivots cleared as well).
    pub fn reduce(mut matrix: BitMatrix, reduced: bool) -> Self {
        let rows = matrix.rows();
        let cols = matrix.cols();
        let mut pivot_cols = Vec::new();
        let mut next_row = 0usize;
        for col in 0..cols {
            if next_row >= rows {
                break;
            }
            // Find a pivot at or below next_row.
            let Some(pivot) = (next_row..rows).find(|&r| matrix.get(r, col)) else {
                continue;
            };
            matrix.swap_rows(pivot, next_row);
            for r in 0..rows {
                let lower = r > next_row;
                let upper = reduced && r < next_row;
                if (lower || upper) && matrix.get(r, col) {
                    matrix.xor_row_into(next_row, r);
                }
            }
            pivot_cols.push(col);
            next_row += 1;
        }
        Self { matrix, pivot_cols }
    }

    /// The eliminated matrix.
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// Columns containing pivots, in row order.
    pub fn pivot_cols(&self) -> &[usize] {
        &self.pivot_cols
    }

    /// Rank of the original matrix.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }
}

/// Column-ordered elimination of an augmented system `[H | s]`.
///
/// Columns are tried in the order given by the caller (for OSD: most
/// reliable—i.e. largest `|LLR|`—last is *not* the convention; OSD sorts
/// least reliable *first is wrong too*: the columns most likely to be in
/// error must land in the information set, so OSD orders columns by
/// **descending reliability of being in error**, i.e. ascending `|posterior|`.
/// This type is agnostic: it just respects `order`).
///
/// After reduction (to reduced row echelon form over the chosen pivots) the
/// system satisfies, for every test pattern `t` on the non-pivot columns,
///
/// ```text
/// e[pivot_row r] = s'[r] ⊕ Σ_{j ∈ supp(t)} H'[r, j]
/// ```
///
/// which [`OrderedEchelon::solve_for_pattern`] evaluates in
/// `O(rank · |t|)` plus output assembly, enabling fast combination sweeps.
///
/// # Examples
///
/// ```
/// use qldpc_gf2::{BitMatrix, BitVec};
///
/// let h = BitMatrix::from_dense(&[&[1, 1, 0], &[0, 1, 1]]);
/// let s = BitVec::from_indices(2, &[0]);
/// let order: Vec<usize> = (0..3).collect();
/// let ech = h.ordered_echelon(&s, &order);
/// let e = ech.solve_for_pattern(&[]);
/// assert_eq!(h.mul_vec(&e), s); // OSD-0 solution satisfies the syndrome
/// ```
#[derive(Debug, Clone)]
pub struct OrderedEchelon {
    /// RREF of H (same column indexing as the original matrix).
    matrix: BitMatrix,
    /// Transformed syndrome.
    rhs: BitVec,
    /// Pivot column per pivot row, in row order.
    pivot_cols: Vec<usize>,
    /// Non-pivot ("residual") columns in the caller's order.
    residual_cols: Vec<usize>,
    /// True iff the transformed syndrome is consistent (no pivot-free row
    /// with a 1 on the right-hand side).
    consistent: bool,
}

impl OrderedEchelon {
    /// Eliminates `[matrix | rhs]` trying columns in `order`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != matrix.rows()`, if `order.len() !=
    /// matrix.cols()`, or if `order` is not a permutation of `0..cols`.
    pub fn reduce(mut matrix: BitMatrix, rhs: &BitVec, order: &[usize]) -> Self {
        assert_eq!(rhs.len(), matrix.rows(), "rhs length must equal row count");
        assert_eq!(order.len(), matrix.cols(), "order must cover every column");
        let mut seen = vec![false; matrix.cols()];
        for &c in order {
            assert!(
                c < matrix.cols() && !seen[c],
                "order must be a permutation of columns"
            );
            seen[c] = true;
        }

        let rows = matrix.rows();
        let mut rhs = rhs.clone();
        let mut pivot_cols = Vec::new();
        let mut residual_cols = Vec::new();
        let mut next_row = 0usize;
        for &col in order {
            if next_row >= rows {
                residual_cols.push(col);
                continue;
            }
            let Some(pivot) = (next_row..rows).find(|&r| matrix.get(r, col)) else {
                residual_cols.push(col);
                continue;
            };
            matrix.swap_rows(pivot, next_row);
            let sp = rhs.get(pivot.max(next_row));
            let sn = rhs.get(next_row);
            if pivot != next_row {
                rhs.set(next_row, sp);
                rhs.set(pivot, sn);
            }
            for r in 0..rows {
                if r != next_row && matrix.get(r, col) {
                    matrix.xor_row_into(next_row, r);
                    if rhs.get(next_row) {
                        let v = rhs.get(r);
                        rhs.set(r, !v);
                    }
                }
            }
            pivot_cols.push(col);
            next_row += 1;
        }
        // Consistency: any all-zero row must have rhs 0. Rows >= rank are
        // all-zero in RREF.
        let rank = pivot_cols.len();
        let consistent = (rank..rows).all(|r| !rhs.get(r));
        Self {
            matrix,
            rhs,
            pivot_cols,
            residual_cols,
            consistent,
        }
    }

    /// Rank of the matrix (size of the information set).
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }

    /// Pivot columns in row order: the OSD information set.
    pub fn pivot_cols(&self) -> &[usize] {
        &self.pivot_cols
    }

    /// Non-pivot columns in the caller's order: the OSD residual set.
    pub fn residual_cols(&self) -> &[usize] {
        &self.residual_cols
    }

    /// Whether `H·e = s` admits any solution at all.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// Solves for the unique `e` with `e[residual] = pattern` (given as
    /// indices **into [`Self::residual_cols`]**) and `H·e = s`.
    ///
    /// `pattern` lists positions of ones within the residual set; an empty
    /// pattern yields the OSD-0 solution.
    ///
    /// # Panics
    ///
    /// Panics if a pattern index is out of range of the residual set.
    pub fn solve_for_pattern(&self, pattern: &[usize]) -> BitVec {
        let mut e = BitVec::zeros(self.matrix.cols());
        // rhs' accumulated at pivot rows.
        let mut acc = self.rhs.clone();
        for &t in pattern {
            let col = self.residual_cols[t];
            e.set(col, true);
            // acc ^= column `col` of the RREF matrix.
            for (row, &_pc) in self.pivot_cols.iter().enumerate() {
                if self.matrix.get(row, col) {
                    let v = acc.get(row);
                    acc.set(row, !v);
                }
            }
        }
        for (row, &pc) in self.pivot_cols.iter().enumerate() {
            if acc.get(row) {
                e.set(pc, true);
            }
        }
        e
    }

    /// Weight of the solution for `pattern` without materializing it.
    ///
    /// Equivalent to `self.solve_for_pattern(pattern).weight()` but avoids
    /// allocating the error vector; used by the OSD combination sweep.
    pub fn solution_weight(&self, pattern: &[usize]) -> usize {
        let mut acc = self.rhs.slice(0..self.pivot_cols.len());
        for &t in pattern {
            let col = self.residual_cols[t];
            for row in 0..self.pivot_cols.len() {
                if self.matrix.get(row, col) {
                    let v = acc.get(row);
                    acc.set(row, !v);
                }
            }
        }
        acc.weight() + pattern.len()
    }
}

/// Reusable word-parallel workspace for repeated ordered eliminations
/// of a fixed matrix — the OSD decode fast path.
///
/// Where [`OrderedEchelon`] clones the matrix and probes bits one at a
/// time in permuted column order, this workspace applies the
/// reliability permutation **once up front** (a column gather through a
/// transpose cached at construction), carries the right-hand side as an
/// appended column so row operations update it for free, and then
/// eliminates plain left-to-right with word-masked pivot scans and row
/// XORs restricted to the word range that can still be nonzero. After
/// elimination it exposes the OSD-0 base solution plus one *delta* per
/// residual column, `delta_j = solve({j}) ⊕ solve({})`, so a
/// combination sweep forms every candidate as
/// `base ⊕ delta_a ⊕ delta_b` in `O(n / 64)` word operations instead of
/// re-solving the system per pattern.
///
/// Equivalence with [`OrderedEchelon`] — same pivots, residual columns,
/// consistency flag and solutions, bit for bit — is pinned by the
/// property suite in `tests/properties.rs`.
///
/// # Examples
///
/// ```
/// use qldpc_gf2::{BitMatrix, BitVec, OrderedEliminator};
///
/// let h = BitMatrix::from_dense(&[&[1, 1, 0], &[0, 1, 1]]);
/// let mut elim = OrderedEliminator::new(&h);
/// let s = BitVec::from_indices(2, &[0]);
/// elim.eliminate(&s, &[0, 1, 2]);
/// assert!(elim.is_consistent());
/// let e = elim.solve_for_pattern(&[]);
/// assert_eq!(h.mul_vec(&e), s);
/// ```
#[derive(Debug, Clone)]
pub struct OrderedEliminator {
    rows: usize,
    cols: usize,
    /// Hᵀ, cached at construction: row `c` holds column `c` of H.
    ht: BitMatrix,
    /// The permuted augmented system, column-major: row `k < cols` is
    /// original column `order[k]`, row `cols` is the rhs. Doubles as
    /// the destination when the RREF is transposed back for the deltas.
    gather_t: BitMatrix,
    /// Row-major permuted augmented matrix `[H·P | s]`; in reduced row
    /// echelon form (over the permuted columns) after [`Self::eliminate`].
    scratch: BitMatrix,
    /// Pivot columns (original indices) in row order.
    pivot_cols: Vec<usize>,
    /// Residual columns (original indices) in the caller's order.
    residual_cols: Vec<usize>,
    /// Permuted index (position in `order`) per residual column.
    perm_residual: Vec<usize>,
    consistent: bool,
    /// OSD-0 solution (zeros when inconsistent or not yet eliminated).
    base: BitVec,
    /// Pooled `delta_j` buffers; only the first [`Self::num_deltas`]
    /// belong to the latest elimination.
    deltas: Vec<BitVec>,
    /// Valid prefix of `deltas` (0 when inconsistent).
    num_deltas: usize,
    /// Pivot-row staging buffer for the row-XOR loop.
    pivot_buf: Vec<u64>,
    /// Permutation-validation scratch.
    seen: Vec<bool>,
}

impl OrderedEliminator {
    /// Builds a workspace for repeated eliminations of `h`.
    pub fn new(h: &BitMatrix) -> Self {
        let (rows, cols) = (h.rows(), h.cols());
        Self {
            rows,
            cols,
            ht: h.transpose(),
            gather_t: BitMatrix::zeros(cols + 1, rows),
            scratch: BitMatrix::zeros(rows, cols + 1),
            pivot_cols: Vec::new(),
            residual_cols: Vec::new(),
            perm_residual: Vec::new(),
            consistent: false,
            base: BitVec::zeros(cols),
            deltas: Vec::new(),
            num_deltas: 0,
            pivot_buf: vec![0; crate::words_for(cols + 1)],
            seen: vec![false; cols],
        }
    }

    /// Number of matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Eliminates `[H·P | rhs]` where `P` permutes columns into `order`,
    /// replacing any previous elimination state.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != rows`, or if `order` is not a permutation
    /// of `0..cols`.
    pub fn eliminate(&mut self, rhs: &BitVec, order: &[usize]) {
        self.eliminate_impl(rhs, order, true);
    }

    /// [`Self::eliminate`], but leaving the per-residual deltas
    /// unmaterialized: [`Self::delta`] and [`Self::solve_for_pattern`]
    /// are unavailable afterwards, while the column views
    /// ([`Self::rhs_column`], [`Self::residual_column`]) and
    /// [`Self::xor_delta_into`] still work. Sweeps that score candidates
    /// by popcount identities over the RREF columns (possible whenever
    /// the score depends only on solution weight) skip the
    /// delta-assembly cost entirely this way.
    pub fn eliminate_without_deltas(&mut self, rhs: &BitVec, order: &[usize]) {
        self.eliminate_impl(rhs, order, false);
    }

    fn eliminate_impl(&mut self, rhs: &BitVec, order: &[usize], materialize_deltas: bool) {
        assert_eq!(rhs.len(), self.rows, "rhs length must equal row count");
        assert_eq!(order.len(), self.cols, "order must cover every column");
        self.seen.fill(false);
        for &c in order {
            assert!(
                c < self.cols && !self.seen[c],
                "order must be a permutation of columns"
            );
            self.seen[c] = true;
        }

        // Gather the permuted columns (= rows of Hᵀ) and the rhs, then
        // flip the whole augmented system into row-major layout with one
        // block transpose.
        for (k, &c) in order.iter().enumerate() {
            self.gather_t
                .row_mut_words(k)
                .copy_from_slice(self.ht.row_words(c));
        }
        self.gather_t
            .row_mut_words(self.cols)
            .copy_from_slice(rhs.as_words());
        self.gather_t.transpose_into(&mut self.scratch);

        // Left-to-right elimination. Invariant: rows ≥ next_row are zero
        // in every permuted column < k, so swaps and pivot-row XORs only
        // need words ≥ k/64 (the pivot row's earlier words are zero).
        // Runs on the raw word slice with incrementally stepped offsets
        // and the pivot row staged in `pivot_buf`, so the inner loops
        // carry no per-access offset arithmetic or row-aliasing splits.
        self.pivot_cols.clear();
        self.residual_cols.clear();
        self.perm_residual.clear();
        let wpr = self.scratch.words_per_row();
        let data = self.scratch.words_mut();
        let mut next_row = 0usize;
        for (k, &col) in order.iter().enumerate() {
            let w = k / WORD_BITS;
            let bit = k % WORD_BITS;
            let mask = 1u64 << bit;
            let mut pivot = usize::MAX;
            let mut idx = next_row * wpr + w;
            for r in next_row..self.rows {
                if data[idx] & mask != 0 {
                    pivot = r;
                    break;
                }
                idx += wpr;
            }
            if pivot == usize::MAX {
                self.residual_cols.push(col);
                self.perm_residual.push(k);
                continue;
            }
            if pivot != next_row {
                let (pa, pb) = (pivot * wpr, next_row * wpr);
                for i in w..wpr {
                    data.swap(pa + i, pb + i);
                }
            }
            let pb = next_row * wpr;
            self.pivot_buf[w..wpr].copy_from_slice(&data[pb + w..pb + wpr]);
            let mut row_base = 0usize;
            for r in 0..self.rows {
                if r != next_row && data[row_base + w] & mask != 0 {
                    for (d, &s) in data[row_base + w..row_base + wpr]
                        .iter_mut()
                        .zip(&self.pivot_buf[w..wpr])
                    {
                        *d ^= s;
                    }
                }
                row_base += wpr;
            }
            self.pivot_cols.push(col);
            next_row += 1;
            if next_row >= self.rows {
                // Remaining columns are all residual.
                for (k2, &c2) in order.iter().enumerate().skip(k + 1) {
                    self.residual_cols.push(c2);
                    self.perm_residual.push(k2);
                }
                break;
            }
        }

        // Consistency: rows below the rank are all-zero in RREF, so the
        // system is solvable iff their rhs (appended-column) bits are 0.
        let rank = self.pivot_cols.len();
        let rw = self.cols / WORD_BITS;
        let rmask = 1u64 << (self.cols % WORD_BITS);
        self.consistent = (rank..self.rows).all(|r| data[r * wpr + rw] & rmask == 0);

        self.base.clear();
        self.num_deltas = 0;
        if self.consistent {
            for r in 0..rank {
                if data[r * wpr + rw] & rmask != 0 {
                    self.base.set(self.pivot_cols[r], true);
                }
            }
            // Flip the RREF back to column-major: the deltas and the
            // column views both read columns, i.e. rows of `gather_t`.
            self.scratch.transpose_into(&mut self.gather_t);
            if materialize_deltas {
                self.compute_deltas();
            }
        }
    }

    /// Materializes `delta_j = solve({j}) ⊕ solve({})` for every
    /// residual column: a one at the residual column itself, plus the
    /// pivot columns whose RREF rows carry a one there. Rows at or below
    /// the rank are all-zero at residual columns (they were zero there
    /// when the column was skipped and no later row operation can touch
    /// it), so every set bit maps directly through `pivot_cols`.
    fn compute_deltas(&mut self) {
        let t = self.residual_cols.len();
        // Grow the pool once; later shots reuse the buffers alloc-free.
        while self.deltas.len() < t {
            self.deltas.push(BitVec::zeros(self.cols));
        }
        for (j, &col) in self.residual_cols.iter().enumerate() {
            let k = self.perm_residual[j];
            let d = &mut self.deltas[j];
            d.clear();
            d.set(col, true);
            for (wi, &word) in self.gather_t.row_words(k).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let r = wi * WORD_BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    d.set(self.pivot_cols[r], true);
                }
            }
        }
        self.num_deltas = t;
    }

    /// Rank of the matrix (size of the information set).
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }

    /// Pivot columns in row order: the OSD information set.
    pub fn pivot_cols(&self) -> &[usize] {
        &self.pivot_cols
    }

    /// Non-pivot columns in the caller's order: the OSD residual set.
    pub fn residual_cols(&self) -> &[usize] {
        &self.residual_cols
    }

    /// Whether `H·e = s` admits any solution at all.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// The OSD-0 solution (all residual bits zero). Meaningful only
    /// after an [`Self::eliminate`] that was consistent.
    pub fn base_solution(&self) -> &BitVec {
        &self.base
    }

    /// The transformed right-hand side over the pivot rows, packed in
    /// words: bit `r` is the RREF rhs at pivot row `r` (bits at or
    /// beyond the rank are zero). The base solution scatters exactly
    /// these bits through [`Self::pivot_cols`], so the OSD-0 weight is
    /// this column's popcount. Meaningful only after a consistent
    /// elimination.
    pub fn rhs_column(&self) -> &[u64] {
        self.gather_t.row_words(self.cols)
    }

    /// RREF column for residual position `j` (an index **into
    /// [`Self::residual_cols`]**) over the pivot rows, packed in words.
    /// `delta_j` scatters these bits through [`Self::pivot_cols`] plus
    /// the residual column itself, so
    /// `weight(base ⊕ delta_j) = popcount(rhs_column ⊕ residual_column(j)) + 1`
    /// — the identity weight-only sweeps score candidates with.
    /// Meaningful only after a consistent elimination.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range of the residual set.
    pub fn residual_column(&self, j: usize) -> &[u64] {
        self.gather_t.row_words(self.perm_residual[j])
    }

    /// XORs `delta_j` into `e` straight from the RREF column, without
    /// requiring materialized deltas — this is how a weight-only sweep
    /// assembles its winning candidate after
    /// [`Self::eliminate_without_deltas`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range of the residual set or if
    /// `e.len() != cols`.
    pub fn xor_delta_into(&self, j: usize, e: &mut BitVec) {
        assert_eq!(e.len(), self.cols, "solution length must equal cols");
        let col = self.residual_cols[j];
        e.set(col, !e.get(col));
        for (wi, &word) in self.residual_column(j).iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let r = wi * WORD_BITS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let pc = self.pivot_cols[r];
                e.set(pc, !e.get(pc));
            }
        }
    }

    /// `solve({j}) ⊕ solve({})` for residual position `j` (an index
    /// **into [`Self::residual_cols`]**).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range of the residual set, or if the last
    /// elimination was inconsistent (no deltas exist).
    pub fn delta(&self, j: usize) -> &BitVec {
        assert!(
            j < self.num_deltas,
            "no delta {j}: the last elimination produced {} residual deltas",
            self.num_deltas
        );
        &self.deltas[j]
    }

    /// Solves for the unique `e` with ones at the **distinct** residual
    /// positions `pattern` (indices into [`Self::residual_cols`]) and
    /// `H·e = s`, as `base ⊕ Σ delta_j` — bit-identical to
    /// [`OrderedEchelon::solve_for_pattern`] on the same system.
    ///
    /// # Panics
    ///
    /// Panics if a pattern index is out of range of the residual set.
    pub fn solve_for_pattern(&self, pattern: &[usize]) -> BitVec {
        let mut e = self.base.clone();
        for &j in pattern {
            e.xor_assign(self.delta(j));
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> BitMatrix {
        BitMatrix::from_dense(&[
            &[1, 1, 0, 1, 0],
            &[0, 1, 1, 0, 1],
            &[1, 0, 1, 1, 1],
            &[1, 1, 0, 1, 0], // duplicate of row 0
        ])
    }

    #[test]
    fn echelon_rank_and_pivots() {
        let ech = Echelon::reduce(example(), false);
        // rows 0,1 independent; row2 = r0+r1; row3 = r0 ⇒ rank 2.
        assert_eq!(ech.rank(), 2);
        assert_eq!(ech.pivot_cols().len(), ech.rank());
    }

    #[test]
    fn reduced_form_clears_above_pivots() {
        let ech = Echelon::reduce(example(), true);
        let m = ech.matrix();
        for (row, &col) in ech.pivot_cols().iter().enumerate() {
            for r in 0..m.rows() {
                assert_eq!(m.get(r, col), r == row, "column {col} should be unit");
            }
        }
    }

    #[test]
    fn ordered_echelon_solves_syndrome() {
        let h = example();
        let true_e = BitVec::from_indices(5, &[1, 4]);
        let s = h.mul_vec(&true_e);
        let order: Vec<usize> = vec![4, 3, 2, 1, 0];
        let ech = OrderedEchelon::reduce(h.clone(), &s, &order);
        assert!(ech.is_consistent());
        let e0 = ech.solve_for_pattern(&[]);
        assert_eq!(h.mul_vec(&e0), s);
    }

    #[test]
    fn ordered_echelon_all_patterns_satisfy() {
        let h = example();
        let s = h.mul_vec(&BitVec::from_indices(5, &[0, 2]));
        let order: Vec<usize> = (0..5).collect();
        let ech = OrderedEchelon::reduce(h.clone(), &s, &order);
        let t = ech.residual_cols().len();
        for mask in 0..(1usize << t) {
            let pattern: Vec<usize> = (0..t).filter(|i| mask >> i & 1 == 1).collect();
            let e = ech.solve_for_pattern(&pattern);
            assert_eq!(h.mul_vec(&e), s, "pattern {pattern:?} violates syndrome");
            assert_eq!(e.weight(), ech.solution_weight(&pattern));
        }
    }

    #[test]
    fn inconsistent_system_detected() {
        // h has a zero row; a syndrome with a 1 there is unsolvable.
        let h = BitMatrix::from_dense(&[&[1, 1], &[0, 0]]);
        let s = BitVec::from_indices(2, &[1]);
        let ech = OrderedEchelon::reduce(h, &s, &[0, 1]);
        assert!(!ech.is_consistent());
    }

    #[test]
    fn respects_column_order_for_information_set() {
        let h = BitMatrix::from_dense(&[&[1, 1, 1]]);
        let s = BitVec::zeros(1);
        let ech = OrderedEchelon::reduce(h.clone(), &s, &[2, 0, 1]);
        assert_eq!(ech.pivot_cols(), &[2]);
        let ech2 = OrderedEchelon::reduce(h, &s, &[1, 2, 0]);
        assert_eq!(ech2.pivot_cols(), &[1]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        let h = BitMatrix::identity(3);
        OrderedEchelon::reduce(h, &BitVec::zeros(3), &[0, 0, 1]);
    }

    #[test]
    fn eliminator_matches_ordered_echelon() {
        let h = example();
        let s = h.mul_vec(&BitVec::from_indices(5, &[0, 2]));
        let order: Vec<usize> = vec![3, 1, 4, 0, 2];
        let ech = OrderedEchelon::reduce(h.clone(), &s, &order);
        let mut elim = OrderedEliminator::new(&h);
        elim.eliminate(&s, &order);
        assert_eq!(elim.rank(), ech.rank());
        assert_eq!(elim.pivot_cols(), ech.pivot_cols());
        assert_eq!(elim.residual_cols(), ech.residual_cols());
        assert_eq!(elim.is_consistent(), ech.is_consistent());
        let t = ech.residual_cols().len();
        for mask in 0..(1usize << t) {
            let pattern: Vec<usize> = (0..t).filter(|i| mask >> i & 1 == 1).collect();
            assert_eq!(
                elim.solve_for_pattern(&pattern),
                ech.solve_for_pattern(&pattern),
                "pattern {pattern:?} diverges"
            );
        }
    }

    #[test]
    fn eliminator_workspace_is_reusable() {
        let h = example();
        let mut elim = OrderedEliminator::new(&h);
        for (seed, order) in [
            (3usize, vec![0usize, 1, 2, 3, 4]),
            (1, vec![4, 2, 0, 3, 1]),
            (2, vec![2, 3, 4, 0, 1]),
        ] {
            let s = h.mul_vec(&BitVec::from_indices(5, &[seed]));
            elim.eliminate(&s, &order);
            assert!(elim.is_consistent());
            let e = elim.solve_for_pattern(&[]);
            assert_eq!(h.mul_vec(&e), s, "order {order:?} base solution wrong");
            assert_eq!(e, elim.base_solution().clone());
        }
    }

    #[test]
    fn eliminator_deltas_shift_single_residual_bits() {
        let h = example();
        let s = h.mul_vec(&BitVec::from_indices(5, &[1, 4]));
        let order: Vec<usize> = (0..5).collect();
        let mut elim = OrderedEliminator::new(&h);
        elim.eliminate(&s, &order);
        for j in 0..elim.residual_cols().len() {
            let expect = &elim.solve_for_pattern(&[j]) ^ elim.base_solution();
            assert_eq!(elim.delta(j), &expect);
            assert!(elim.delta(j).get(elim.residual_cols()[j]));
        }
    }

    #[test]
    fn eliminator_detects_inconsistency() {
        let h = BitMatrix::from_dense(&[&[1, 1], &[0, 0]]);
        let mut elim = OrderedEliminator::new(&h);
        elim.eliminate(&BitVec::from_indices(2, &[1]), &[0, 1]);
        assert!(!elim.is_consistent());
        elim.eliminate(&BitVec::from_indices(2, &[0]), &[0, 1]);
        assert!(elim.is_consistent());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn eliminator_bad_order_panics() {
        let mut elim = OrderedEliminator::new(&BitMatrix::identity(3));
        elim.eliminate(&BitVec::zeros(3), &[0, 0, 1]);
    }
}
