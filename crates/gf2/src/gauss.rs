//! Gaussian elimination over GF(2).
//!
//! Two engines are provided:
//!
//! * [`Echelon`] — plain (optionally reduced) row echelon form with pivot
//!   tracking, used for rank / kernel / row-space computations,
//! * [`OrderedEchelon`] — elimination that tries columns in a caller-supplied
//!   order while carrying a right-hand side, which is exactly the primitive
//!   ordered-statistics decoding (OSD) needs: the first `rank` linearly
//!   independent columns in reliability order become the *information set*.

use crate::{BitMatrix, BitVec};

/// Result of (reduced) row echelon elimination.
///
/// # Examples
///
/// ```
/// use qldpc_gf2::{BitMatrix, Echelon};
///
/// let m = BitMatrix::from_dense(&[&[1, 1, 0], &[1, 1, 1]]);
/// let ech = m.echelon(true);
/// assert_eq!(ech.rank(), 2);
/// assert_eq!(ech.pivot_cols(), &[0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Echelon {
    matrix: BitMatrix,
    pivot_cols: Vec<usize>,
}

impl Echelon {
    /// Eliminates `matrix` in place (consuming it) scanning columns left to
    /// right. With `reduced = true` the result is in *reduced* row echelon
    /// form (entries above pivots cleared as well).
    pub fn reduce(mut matrix: BitMatrix, reduced: bool) -> Self {
        let rows = matrix.rows();
        let cols = matrix.cols();
        let mut pivot_cols = Vec::new();
        let mut next_row = 0usize;
        for col in 0..cols {
            if next_row >= rows {
                break;
            }
            // Find a pivot at or below next_row.
            let Some(pivot) = (next_row..rows).find(|&r| matrix.get(r, col)) else {
                continue;
            };
            matrix.swap_rows(pivot, next_row);
            for r in 0..rows {
                let lower = r > next_row;
                let upper = reduced && r < next_row;
                if (lower || upper) && matrix.get(r, col) {
                    matrix.xor_row_into(next_row, r);
                }
            }
            pivot_cols.push(col);
            next_row += 1;
        }
        Self { matrix, pivot_cols }
    }

    /// The eliminated matrix.
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// Columns containing pivots, in row order.
    pub fn pivot_cols(&self) -> &[usize] {
        &self.pivot_cols
    }

    /// Rank of the original matrix.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }
}

/// Column-ordered elimination of an augmented system `[H | s]`.
///
/// Columns are tried in the order given by the caller (for OSD: most
/// reliable—i.e. largest `|LLR|`—last is *not* the convention; OSD sorts
/// least reliable *first is wrong too*: the columns most likely to be in
/// error must land in the information set, so OSD orders columns by
/// **descending reliability of being in error**, i.e. ascending `|posterior|`.
/// This type is agnostic: it just respects `order`).
///
/// After reduction (to reduced row echelon form over the chosen pivots) the
/// system satisfies, for every test pattern `t` on the non-pivot columns,
///
/// ```text
/// e[pivot_row r] = s'[r] ⊕ Σ_{j ∈ supp(t)} H'[r, j]
/// ```
///
/// which [`OrderedEchelon::solve_for_pattern`] evaluates in
/// `O(rank · |t|)` plus output assembly, enabling fast combination sweeps.
///
/// # Examples
///
/// ```
/// use qldpc_gf2::{BitMatrix, BitVec};
///
/// let h = BitMatrix::from_dense(&[&[1, 1, 0], &[0, 1, 1]]);
/// let s = BitVec::from_indices(2, &[0]);
/// let order: Vec<usize> = (0..3).collect();
/// let ech = h.ordered_echelon(&s, &order);
/// let e = ech.solve_for_pattern(&[]);
/// assert_eq!(h.mul_vec(&e), s); // OSD-0 solution satisfies the syndrome
/// ```
#[derive(Debug, Clone)]
pub struct OrderedEchelon {
    /// RREF of H (same column indexing as the original matrix).
    matrix: BitMatrix,
    /// Transformed syndrome.
    rhs: BitVec,
    /// Pivot column per pivot row, in row order.
    pivot_cols: Vec<usize>,
    /// Non-pivot ("residual") columns in the caller's order.
    residual_cols: Vec<usize>,
    /// True iff the transformed syndrome is consistent (no pivot-free row
    /// with a 1 on the right-hand side).
    consistent: bool,
}

impl OrderedEchelon {
    /// Eliminates `[matrix | rhs]` trying columns in `order`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != matrix.rows()`, if `order.len() !=
    /// matrix.cols()`, or if `order` is not a permutation of `0..cols`.
    pub fn reduce(mut matrix: BitMatrix, rhs: &BitVec, order: &[usize]) -> Self {
        assert_eq!(rhs.len(), matrix.rows(), "rhs length must equal row count");
        assert_eq!(order.len(), matrix.cols(), "order must cover every column");
        let mut seen = vec![false; matrix.cols()];
        for &c in order {
            assert!(
                c < matrix.cols() && !seen[c],
                "order must be a permutation of columns"
            );
            seen[c] = true;
        }

        let rows = matrix.rows();
        let mut rhs = rhs.clone();
        let mut pivot_cols = Vec::new();
        let mut residual_cols = Vec::new();
        let mut next_row = 0usize;
        for &col in order {
            if next_row >= rows {
                residual_cols.push(col);
                continue;
            }
            let Some(pivot) = (next_row..rows).find(|&r| matrix.get(r, col)) else {
                residual_cols.push(col);
                continue;
            };
            matrix.swap_rows(pivot, next_row);
            let sp = rhs.get(pivot.max(next_row));
            let sn = rhs.get(next_row);
            if pivot != next_row {
                rhs.set(next_row, sp);
                rhs.set(pivot, sn);
            }
            for r in 0..rows {
                if r != next_row && matrix.get(r, col) {
                    matrix.xor_row_into(next_row, r);
                    if rhs.get(next_row) {
                        let v = rhs.get(r);
                        rhs.set(r, !v);
                    }
                }
            }
            pivot_cols.push(col);
            next_row += 1;
        }
        // Consistency: any all-zero row must have rhs 0. Rows >= rank are
        // all-zero in RREF.
        let rank = pivot_cols.len();
        let consistent = (rank..rows).all(|r| !rhs.get(r));
        Self {
            matrix,
            rhs,
            pivot_cols,
            residual_cols,
            consistent,
        }
    }

    /// Rank of the matrix (size of the information set).
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }

    /// Pivot columns in row order: the OSD information set.
    pub fn pivot_cols(&self) -> &[usize] {
        &self.pivot_cols
    }

    /// Non-pivot columns in the caller's order: the OSD residual set.
    pub fn residual_cols(&self) -> &[usize] {
        &self.residual_cols
    }

    /// Whether `H·e = s` admits any solution at all.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// Solves for the unique `e` with `e[residual] = pattern` (given as
    /// indices **into [`Self::residual_cols`]**) and `H·e = s`.
    ///
    /// `pattern` lists positions of ones within the residual set; an empty
    /// pattern yields the OSD-0 solution.
    ///
    /// # Panics
    ///
    /// Panics if a pattern index is out of range of the residual set.
    pub fn solve_for_pattern(&self, pattern: &[usize]) -> BitVec {
        let mut e = BitVec::zeros(self.matrix.cols());
        // rhs' accumulated at pivot rows.
        let mut acc = self.rhs.clone();
        for &t in pattern {
            let col = self.residual_cols[t];
            e.set(col, true);
            // acc ^= column `col` of the RREF matrix.
            for (row, &_pc) in self.pivot_cols.iter().enumerate() {
                if self.matrix.get(row, col) {
                    let v = acc.get(row);
                    acc.set(row, !v);
                }
            }
        }
        for (row, &pc) in self.pivot_cols.iter().enumerate() {
            if acc.get(row) {
                e.set(pc, true);
            }
        }
        e
    }

    /// Weight of the solution for `pattern` without materializing it.
    ///
    /// Equivalent to `self.solve_for_pattern(pattern).weight()` but avoids
    /// allocating the error vector; used by the OSD combination sweep.
    pub fn solution_weight(&self, pattern: &[usize]) -> usize {
        let mut acc = self.rhs.slice(0..self.pivot_cols.len());
        for &t in pattern {
            let col = self.residual_cols[t];
            for row in 0..self.pivot_cols.len() {
                if self.matrix.get(row, col) {
                    let v = acc.get(row);
                    acc.set(row, !v);
                }
            }
        }
        acc.weight() + pattern.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> BitMatrix {
        BitMatrix::from_dense(&[
            &[1, 1, 0, 1, 0],
            &[0, 1, 1, 0, 1],
            &[1, 0, 1, 1, 1],
            &[1, 1, 0, 1, 0], // duplicate of row 0
        ])
    }

    #[test]
    fn echelon_rank_and_pivots() {
        let ech = Echelon::reduce(example(), false);
        // rows 0,1 independent; row2 = r0+r1; row3 = r0 ⇒ rank 2.
        assert_eq!(ech.rank(), 2);
        assert_eq!(ech.pivot_cols().len(), ech.rank());
    }

    #[test]
    fn reduced_form_clears_above_pivots() {
        let ech = Echelon::reduce(example(), true);
        let m = ech.matrix();
        for (row, &col) in ech.pivot_cols().iter().enumerate() {
            for r in 0..m.rows() {
                assert_eq!(m.get(r, col), r == row, "column {col} should be unit");
            }
        }
    }

    #[test]
    fn ordered_echelon_solves_syndrome() {
        let h = example();
        let true_e = BitVec::from_indices(5, &[1, 4]);
        let s = h.mul_vec(&true_e);
        let order: Vec<usize> = vec![4, 3, 2, 1, 0];
        let ech = OrderedEchelon::reduce(h.clone(), &s, &order);
        assert!(ech.is_consistent());
        let e0 = ech.solve_for_pattern(&[]);
        assert_eq!(h.mul_vec(&e0), s);
    }

    #[test]
    fn ordered_echelon_all_patterns_satisfy() {
        let h = example();
        let s = h.mul_vec(&BitVec::from_indices(5, &[0, 2]));
        let order: Vec<usize> = (0..5).collect();
        let ech = OrderedEchelon::reduce(h.clone(), &s, &order);
        let t = ech.residual_cols().len();
        for mask in 0..(1usize << t) {
            let pattern: Vec<usize> = (0..t).filter(|i| mask >> i & 1 == 1).collect();
            let e = ech.solve_for_pattern(&pattern);
            assert_eq!(h.mul_vec(&e), s, "pattern {pattern:?} violates syndrome");
            assert_eq!(e.weight(), ech.solution_weight(&pattern));
        }
    }

    #[test]
    fn inconsistent_system_detected() {
        // h has a zero row; a syndrome with a 1 there is unsolvable.
        let h = BitMatrix::from_dense(&[&[1, 1], &[0, 0]]);
        let s = BitVec::from_indices(2, &[1]);
        let ech = OrderedEchelon::reduce(h, &s, &[0, 1]);
        assert!(!ech.is_consistent());
    }

    #[test]
    fn respects_column_order_for_information_set() {
        let h = BitMatrix::from_dense(&[&[1, 1, 1]]);
        let s = BitVec::zeros(1);
        let ech = OrderedEchelon::reduce(h.clone(), &s, &[2, 0, 1]);
        assert_eq!(ech.pivot_cols(), &[2]);
        let ech2 = OrderedEchelon::reduce(h, &s, &[1, 2, 0]);
        assert_eq!(ech2.pivot_cols(), &[1]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_panics() {
        let h = BitMatrix::identity(3);
        OrderedEchelon::reduce(h, &BitVec::zeros(3), &[0, 0, 1]);
    }
}
