//! The per-request stage taxonomy and its clocks.
//!
//! A decode request's life inside the service decomposes into six
//! stages, and the latency argument the stack exists to make hinges on
//! knowing which of them the microseconds went to:
//!
//! | stage | covers |
//! |---|---|
//! | `queue_wait` | submit → a worker picks the request up |
//! | `coalesce_wait` | holding the batch open for more arrivals |
//! | `steal` | scanning sibling shard queues for head-of-line work |
//! | `kernel` | the decoder call itself (`decode_batch` / `decode_windows`) |
//! | `post_process` | kernel return → all responses of the batch fulfilled |
//! | `fulfill` | dispatch → this request's own response fulfilled |
//!
//! [`StageSet`] keeps one [`StreamingHistogram`] per stage (seconds);
//! [`SpanClock`] is the cheap lap timer the worker loop uses to mark
//! stage boundaries without re-reading the clock twice per boundary.

use crate::histogram::{HistogramSnapshot, StreamingHistogram};
use std::time::{Duration, Instant};

/// One stage of a request's life. See the crate docs for the
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Submit → a worker picks the request up.
    QueueWait,
    /// Holding a forming batch open for more arrivals.
    CoalesceWait,
    /// Scanning sibling shard queues for stealable work.
    Steal,
    /// The decoder kernel call.
    Kernel,
    /// Kernel return → all of the batch's responses fulfilled.
    PostProcess,
    /// Dispatch → this request's own response fulfilled.
    Fulfill,
}

impl Stage {
    /// Every stage, in canonical (pipeline) order.
    pub const ALL: [Stage; 6] = [
        Stage::QueueWait,
        Stage::CoalesceWait,
        Stage::Steal,
        Stage::Kernel,
        Stage::PostProcess,
        Stage::Fulfill,
    ];

    /// The exposition label, e.g. `"queue_wait"`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::CoalesceWait => "coalesce_wait",
            Stage::Steal => "steal",
            Stage::Kernel => "kernel",
            Stage::PostProcess => "post_process",
            Stage::Fulfill => "fulfill",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::CoalesceWait => 1,
            Stage::Steal => 2,
            Stage::Kernel => 3,
            Stage::PostProcess => 4,
            Stage::Fulfill => 5,
        }
    }
}

/// One streaming histogram per [`Stage`], recording durations in
/// seconds. Sharing rules match [`StreamingHistogram`]: any number of
/// threads may record concurrently.
#[derive(Debug, Default)]
pub struct StageSet {
    histograms: [StreamingHistogram; 6],
}

impl StageSet {
    /// An empty stage set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `duration` against `stage`.
    pub fn record(&self, stage: Stage, duration: Duration) {
        self.histograms[stage.index()].record(duration.as_secs_f64());
    }

    /// Records a duration already converted to seconds.
    pub fn record_secs(&self, stage: Stage, seconds: f64) {
        self.histograms[stage.index()].record(seconds);
    }

    /// Point-in-time copy of every stage histogram.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            stages: std::array::from_fn(|i| self.histograms[i].snapshot()),
        }
    }
}

/// A plain-data copy of a [`StageSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    stages: [HistogramSnapshot; 6],
}

impl StageSnapshot {
    /// The histogram of one stage.
    pub fn get(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()]
    }

    /// Iterates `(stage, histogram)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, &HistogramSnapshot)> {
        Stage::ALL.iter().map(|&s| (s, &self.stages[s.index()]))
    }
}

/// A lap clock for marking successive stage boundaries: each
/// [`lap`](Self::lap) returns the time since the previous lap (or
/// construction) and restarts the clock, so a worker loop reads the
/// clock once per boundary instead of twice per stage.
#[derive(Debug)]
pub struct SpanClock {
    last: Instant,
}

impl SpanClock {
    /// Starts the clock.
    pub fn start() -> Self {
        Self {
            last: Instant::now(),
        }
    }

    /// Time since the previous lap; restarts the clock.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now - self.last;
        self.last = now;
        elapsed
    }

    /// Time since the previous lap without restarting the clock.
    pub fn peek(&self) -> Duration {
        self.last.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names[0], "queue_wait");
        assert_eq!(names[5], "fulfill");
    }

    #[test]
    fn records_per_stage() {
        let set = StageSet::new();
        set.record(Stage::Kernel, Duration::from_micros(250));
        set.record(Stage::Kernel, Duration::from_micros(750));
        set.record_secs(Stage::QueueWait, 0.001);
        let snap = set.snapshot();
        assert_eq!(snap.get(Stage::Kernel).count, 2);
        assert!((snap.get(Stage::Kernel).sum - 0.001).abs() < 1e-9);
        assert_eq!(snap.get(Stage::QueueWait).count, 1);
        assert_eq!(snap.get(Stage::Steal).count, 0);
        assert_eq!(snap.iter().count(), 6);
    }

    #[test]
    fn span_clock_laps_monotonically() {
        let mut clock = SpanClock::start();
        std::thread::sleep(Duration::from_millis(1));
        let first = clock.lap();
        assert!(first >= Duration::from_millis(1));
        let second = clock.lap();
        assert!(second <= first);
        assert!(clock.peek() < Duration::from_secs(1));
    }
}
