//! The bounded, mergeable, lock-light streaming histogram.
//!
//! Values land in fixed log-spaced buckets (three per doubling, so
//! every bucket spans ~26% and a quantile estimate is never off by
//! more than ~13% within its bucket), while exact count, sum, min, and
//! max ride alongside in atomics. Memory is constant regardless of how
//! many samples arrive — the point of the design: a week-long soak
//! records every sample where the old capped `Vec<f64>` silently
//! stopped at 2^18.
//!
//! Recording is wait-free for the bucket/count (relaxed fetch-adds)
//! and lock-free for the floating-point sum/min/max (short CAS loops
//! on the bit patterns), so many producer threads can hammer one
//! histogram without contention collapse.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log-spaced buckets. With 3 buckets per doubling the
/// histogram spans 32 doublings: from 2^-20 (≈ 1 µs when recording
/// seconds) to 2^12 (≈ 68 minutes). Values outside the span clamp into
/// the edge buckets; the exact min/max are kept regardless.
pub const NUM_BUCKETS: usize = 96;

/// Buckets per factor-of-two of value range.
const BUCKETS_PER_DOUBLING: f64 = 3.0;

/// Exponent of the lower bound of bucket 1 (bucket 0 additionally
/// catches everything below it, including zero).
const MIN_EXP: f64 = -20.0;

/// Lower bound of bucket `i` (0 for the catch-all bucket 0).
///
/// # Panics
///
/// Panics when `i > NUM_BUCKETS` (index `NUM_BUCKETS` is allowed and
/// returns the upper bound of the last bucket).
pub fn bucket_lower_bound(i: usize) -> f64 {
    assert!(i <= NUM_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        0.0
    } else {
        2f64.powf(MIN_EXP + (i - 1) as f64 / BUCKETS_PER_DOUBLING)
    }
}

/// Bucket index for a finite non-negative value.
fn bucket_index(value: f64) -> usize {
    if value < 2f64.powf(MIN_EXP) {
        return 0;
    }
    let pos = (value.log2() - MIN_EXP) * BUCKETS_PER_DOUBLING;
    // +1: bucket 0 is the underflow catch-all, bucket 1 starts at
    // 2^MIN_EXP. The epsilon keeps values sitting exactly on a bucket
    // boundary (whose log2 round-trip may land a hair low) in the
    // bucket whose lower bound they are.
    (((pos + 1e-9).floor() as usize) + 1).min(NUM_BUCKETS - 1)
}

/// A concurrent, constant-memory value histogram. See the crate docs
/// for the design.
#[derive(Debug)]
pub struct StreamingHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    /// `f64` bit patterns maintained by CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one sample. Returns `false` (recording nothing) for
    /// non-finite or negative values, so callers can count rejected
    /// samples instead of poisoning the aggregates.
    pub fn record(&self, value: f64) -> bool {
        if !value.is_finite() || value < 0.0 {
            return false;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        Self::update_f64(&self.sum_bits, |sum| sum + value);
        Self::update_f64(&self.min_bits, |min| min.min(value));
        Self::update_f64(&self.max_bits, |max| max.max(value));
        true
    }

    /// Lock-free read-modify-write of an `f64` stored as bits.
    fn update_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
        let mut current = bits.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(current)).to_bits();
            if next == current {
                return;
            }
            match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the aggregates. Bucket counts are read
    /// bucket-by-bucket, so a snapshot taken concurrently with
    /// recording may be mid-sample (`count` and the bucket total can
    /// transiently differ by in-flight records); it is always a valid
    /// histogram of *some* prefix-interleaving of the samples.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            // Empty histograms expose 0.0 extrema rather than ±inf so
            // rendered output stays finite and golden-testable.
            min: if count == 0 { 0.0 } else { min },
            max: if count == 0 { 0.0 } else { max },
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`StreamingHistogram`]: the mergeable,
/// quantile-queryable form handed to renderers and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Exact smallest sample (0.0 when empty).
    pub min: f64,
    /// Exact largest sample (0.0 when empty).
    pub max: f64,
    /// Per-bucket sample counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by locating the
    /// bucket holding the target rank and interpolating linearly
    /// within it, clamped to the exact `[min, max]`. Returns 0.0 when
    /// empty. The estimate is exact for `q = 0` and `q = 1` and within
    /// one bucket width (~26%) otherwise.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0.0;
        }
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let rank = q * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank < (seen + n) as f64 || i == NUM_BUCKETS - 1 {
                let lo = bucket_lower_bound(i);
                let hi = bucket_lower_bound(i + 1);
                let frac = ((rank - seen as f64 + 0.5) / n as f64).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Combines two snapshots into the histogram of the union of their
    /// samples. Bucket counts, totals, and extrema merge exactly; the
    /// sum is a floating-point addition, so merging is associative up
    /// to rounding in `sum` (and exactly associative in every other
    /// field) — the property test in `tests/properties.rs` pins this.
    pub fn merge(&self, other: &Self) -> Self {
        let count = self.count + other.count;
        let (min, max) = if self.count == 0 {
            (other.min, other.max)
        } else if other.count == 0 {
            (self.min, self.max)
        } else {
            (self.min.min(other.min), self.max.max(other.max))
        };
        Self {
            count,
            sum: self.sum + other.sum,
            min,
            max,
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone() {
        for i in 0..NUM_BUCKETS {
            assert!(bucket_lower_bound(i) < bucket_lower_bound(i + 1));
        }
        assert_eq!(bucket_lower_bound(0), 0.0);
    }

    #[test]
    fn values_land_in_their_bucket() {
        for i in 1..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            let hi = bucket_lower_bound(i + 1);
            let mid = (lo + hi) / 2.0;
            assert_eq!(bucket_index(mid), i, "midpoint of bucket {i}");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e30), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_aggregates() {
        let h = StreamingHistogram::new();
        for v in [0.5, 1.5, 2.5, 10.0] {
            assert!(h.record(v));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 14.5).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 10.0);
        assert!((s.mean() - 3.625).abs() < 1e-12);
    }

    #[test]
    fn rejects_junk() {
        let h = StreamingHistogram::new();
        assert!(!h.record(f64::NAN));
        assert!(!h.record(f64::INFINITY));
        assert!(!h.record(-1.0));
        assert!(h.record(0.0));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn empty_snapshot_is_finite() {
        let s = StreamingHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = StreamingHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 0.001 ..= 1.000
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0.001);
        assert_eq!(s.quantile(1.0), 1.0);
        let p50 = s.quantile(0.5);
        // Within one bucket width (~26%) of the true median 0.5.
        assert!((0.35..=0.65).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!((0.75..=1.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn merge_identity_and_exact_fields() {
        let h = StreamingHistogram::new();
        for v in [0.1, 0.2, 0.3] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.merge(&HistogramSnapshot::empty()), s);
        assert_eq!(HistogramSnapshot::empty().merge(&s), s);
        let both = s.merge(&s);
        assert_eq!(both.count, 6);
        assert_eq!(both.min, 0.1);
        assert_eq!(both.max, 0.3);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(StreamingHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000 {
                        h.record((t * 10_000 + i) as f64 * 1e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 39_999e-6);
        let expected: f64 = (0..40_000).map(|i| i as f64 * 1e-6).sum();
        assert!((s.sum - expected).abs() / expected < 1e-9);
    }
}
