//! Observability primitives for the decoding stack, with no external
//! dependencies (hermetic, like the rest of the workspace).
//!
//! The paper's central claim is a *latency* argument — fully
//! parallelized BP beating BP-OSD on wall-clock-critical accounting —
//! so the service needs to answer two questions cheaply and
//! continuously: *where did the microseconds go* (queue wait vs.
//! coalesce wait vs. kernel vs. post-process) and *how hard did the
//! decoder work* (iterations, convergence, oscillation, OSD sweeps).
//! This crate supplies the four primitives every layer shares:
//!
//! * [`StreamingHistogram`] — a bounded, mergeable, lock-light value
//!   histogram: fixed log-spaced buckets plus exact
//!   min/max/count/sum, constant memory, quantile *estimates* from a
//!   [`HistogramSnapshot`]. Replaces unbounded sample vectors so long
//!   soaks never drop samples.
//! * [`Stage`] / [`StageSet`] / [`SpanClock`] — a six-stage request
//!   taxonomy (queue-wait, coalesce-wait, steal, kernel, post-process,
//!   fulfill) with one histogram per stage and a cheap lap clock for
//!   recording successive stage boundaries.
//! * [`Exposition`] — a deterministic Prometheus-style text sink
//!   (`name{code="gross",stage="kernel"} value` lines, lexicographically
//!   sorted, so output can be golden-tested byte-for-byte).
//! * [`EventJournal`] — a bounded ring-buffer of timestamped events for
//!   post-mortem dumps on worker death or overload.
//!
//! Everything is `Send + Sync` and records with relaxed atomics (plus
//! one short CAS loop for the floating-point extrema/sum), so the hot
//! decode path pays nanoseconds per sample — `crates/bench`'s
//! `telemetry` bench pins the overhead below 2% of decode throughput.

mod exposition;
mod histogram;
mod journal;
mod stage;

pub use exposition::Exposition;
pub use histogram::{bucket_lower_bound, HistogramSnapshot, StreamingHistogram, NUM_BUCKETS};
pub use journal::{EventJournal, JournalEntry};
pub use stage::{SpanClock, Stage, StageSet, StageSnapshot};
