//! The deterministic text exposition sink.
//!
//! Metrics render as Prometheus-style lines —
//! `name{code="gross",stage="kernel"} value` — with two determinism
//! guarantees that make the output golden-testable:
//!
//! * **Stable ordering**: [`Exposition::render`] sorts lines
//!   lexicographically, so the emission order (which depends on hash
//!   maps and thread interleavings upstream) never shows through.
//! * **Stable values**: numbers format via Rust's shortest-round-trip
//!   `f64` display, so equal values always render to equal bytes.
//!
//! Timing-valued series (anything recorded from a clock) are
//! conventionally named with a `_seconds` component; golden tests
//! byte-compare everything else and range-check those.

use crate::histogram::HistogramSnapshot;
use std::fmt::Write as _;

/// Accumulates metric lines and renders them as a sorted text block.
#[derive(Debug, Default)]
pub struct Exposition {
    lines: Vec<String>,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits one integer-valued series.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.lines.push(format!("{} {value}", series(name, labels)));
    }

    /// Emits one float-valued series.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.lines
            .push(format!("{} {}", series(name, labels), fmt_f64(value)));
    }

    /// Emits the standard decomposition of a histogram:
    /// `name_count`, `name_sum`, `name_min`, `name_max`, and one
    /// `name{…,quantile="q"}` estimate per requested quantile.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        quantiles: &[f64],
    ) {
        self.counter(&format!("{name}_count"), labels, snap.count);
        self.gauge(&format!("{name}_sum"), labels, snap.sum);
        self.gauge(&format!("{name}_min"), labels, snap.min);
        self.gauge(&format!("{name}_max"), labels, snap.max);
        for &q in quantiles {
            let q_label = fmt_f64(q);
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", &q_label));
            self.gauge(name, &with_q, snap.quantile(q));
        }
    }

    /// Renders the sorted exposition, one line per series, trailing
    /// newline included (empty string when no series were emitted).
    pub fn render(mut self) -> String {
        self.lines.sort_unstable();
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

/// `name{k1="v1",k2="v2"}` (bare `name` with no labels).
fn series(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{name}{{{}}}", body.join(","))
}

/// Escapes a label value per the Prometheus text format.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Shortest-round-trip float formatting (deterministic for equal bits).
fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        // Normalize -0.0 so sign-of-zero noise never reaches goldens.
        "0".to_string()
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::StreamingHistogram;

    #[test]
    fn renders_sorted_lines() {
        let mut e = Exposition::new();
        e.counter("zzz_total", &[], 3);
        e.counter("aaa_total", &[("code", "gross")], 1);
        e.gauge("mmm", &[("code", "gross"), ("stage", "kernel")], 0.25);
        let out = e.render();
        assert_eq!(
            out,
            "aaa_total{code=\"gross\"} 1\nmmm{code=\"gross\",stage=\"kernel\"} 0.25\nzzz_total 3\n"
        );
    }

    #[test]
    fn histogram_decomposition() {
        let h = StreamingHistogram::new();
        h.record(1.0);
        h.record(3.0);
        let mut e = Exposition::new();
        e.histogram("lat_seconds", &[("code", "c")], &h.snapshot(), &[0.5]);
        let out = e.render();
        assert!(out.contains("lat_seconds_count{code=\"c\"} 2\n"));
        assert!(out.contains("lat_seconds_sum{code=\"c\"} 4\n"));
        assert!(out.contains("lat_seconds_min{code=\"c\"} 1\n"));
        assert!(out.contains("lat_seconds_max{code=\"c\"} 3\n"));
        assert!(out.contains("lat_seconds{code=\"c\",quantile=\"0.5\"}"));
    }

    #[test]
    fn escapes_label_values() {
        let mut e = Exposition::new();
        e.counter("m", &[("k", "a\"b\\c\nd")], 1);
        assert_eq!(e.render(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn negative_zero_normalizes() {
        let mut e = Exposition::new();
        e.gauge("g", &[], -0.0);
        assert_eq!(e.render(), "g 0\n");
    }
}
