//! The bounded ring-buffer event journal.
//!
//! Counters and histograms answer "how much"; the journal answers
//! "what happened right before it died". Rare, high-signal events —
//! worker panics, overload rejections, shutdown drains — append
//! `(sequence, elapsed, kind, detail)` entries into a fixed-capacity
//! ring; when the ring is full the oldest entry is evicted, so memory
//! stays bounded no matter how long the service runs, and a post-mortem
//! dump always shows the *most recent* history.
//!
//! Recording takes a mutex: events are orders of magnitude rarer than
//! samples, so contention is irrelevant and the simple implementation
//! wins.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotone sequence number (counts every event ever recorded, so
    /// gaps at the front of a dump reveal how much history was
    /// evicted).
    pub seq: u64,
    /// Time since the journal was created.
    pub elapsed: Duration,
    /// Short machine-readable event class, e.g. `"worker-death"`.
    pub kind: &'static str,
    /// Free-form context, e.g. `"code=gross shard=1"`.
    pub detail: String,
}

/// A bounded, thread-safe ring of recent [`JournalEntry`]s.
#[derive(Debug)]
pub struct EventJournal {
    started: Instant,
    capacity: usize,
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    entries: VecDeque<JournalEntry>,
    next_seq: u64,
}

impl EventJournal {
    /// A journal retaining at most `capacity` most-recent events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Self {
            started: Instant::now(),
            capacity,
            inner: Mutex::new(Ring {
                entries: VecDeque::with_capacity(capacity),
                next_seq: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest entry when full.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>) {
        let entry_elapsed = self.started.elapsed();
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.entries.len() == self.capacity {
            ring.entries.pop_front();
        }
        ring.entries.push_back(JournalEntry {
            seq,
            elapsed: entry_elapsed,
            kind,
            detail: detail.into(),
        });
    }

    /// Events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_seq
    }

    /// Copies out the retained entries, oldest first.
    pub fn dump(&self) -> Vec<JournalEntry> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the retained entries as human-readable lines:
    /// `#seq [+12.345s] kind detail`. Empty string when nothing was
    /// recorded.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.dump() {
            let _ = writeln!(
                out,
                "#{} [+{:.3}s] {} {}",
                e.seq,
                e.elapsed.as_secs_f64(),
                e.kind,
                e.detail
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent() {
        let j = EventJournal::new(3);
        for i in 0..5 {
            j.record("tick", format!("i={i}"));
        }
        let dump = j.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].seq, 2);
        assert_eq!(dump[2].seq, 4);
        assert_eq!(dump[2].detail, "i=4");
        assert_eq!(j.recorded(), 5);
    }

    #[test]
    fn render_lines_up() {
        let j = EventJournal::new(8);
        j.record("worker-death", "code=gross shard=0");
        let text = j.render();
        assert!(text.starts_with("#0 [+"));
        assert!(text.contains("worker-death code=gross shard=0"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn concurrent_records_keep_sequence_dense() {
        use std::sync::Arc;
        let j = Arc::new(EventJournal::new(64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        j.record("evt", "");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.recorded(), 64);
        let seqs: Vec<u64> = j.dump().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = EventJournal::new(0);
    }
}
