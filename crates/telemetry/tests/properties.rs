//! Property tests for the streaming histogram's merge algebra: merging
//! snapshots must commute and associate (exactly in every integer
//! field and the extrema; up to floating-point rounding in `sum`), and
//! a merged snapshot must equal the histogram of the concatenated
//! sample streams.

use proptest::prelude::*;
use qldpc_telemetry::{HistogramSnapshot, StreamingHistogram};

/// Positive sample values spanning the histogram's full dynamic range
/// (and past both clamped ends).
fn samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((-30.0f64..16.0).prop_map(|e| 2f64.powf(e)), 0..max_len)
}

fn snapshot_of(values: &[f64]) -> HistogramSnapshot {
    let h = StreamingHistogram::new();
    for &v in values {
        assert!(h.record(v), "strategy produced an unrecordable value {v}");
    }
    h.snapshot()
}

/// Exact equality on count/buckets/min/max; relative tolerance on the
/// floating-point sum (merge order may round differently).
fn assert_equivalent(a: &HistogramSnapshot, b: &HistogramSnapshot) {
    assert_eq!(a.count, b.count);
    assert_eq!(a.buckets, b.buckets);
    assert_eq!(a.min, b.min);
    assert_eq!(a.max, b.max);
    let scale = a.sum.abs().max(b.sum.abs()).max(1e-300);
    assert!(
        (a.sum - b.sum).abs() / scale < 1e-9,
        "sums diverged: {} vs {}",
        a.sum,
        b.sum
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in samples(64), b in samples(64)) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        assert_equivalent(&sa.merge(&sb), &sb.merge(&sa));
    }

    #[test]
    fn merge_is_associative(a in samples(48), b in samples(48), c in samples(48)) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        assert_equivalent(&left, &right);
    }

    #[test]
    fn merge_equals_concatenation(a in samples(64), b in samples(64)) {
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        assert_equivalent(&merged, &snapshot_of(&all));
    }

    #[test]
    fn empty_is_the_identity(a in samples(64)) {
        let s = snapshot_of(&a);
        assert_equivalent(&s.merge(&HistogramSnapshot::empty()), &s);
        assert_equivalent(&HistogramSnapshot::empty().merge(&s), &s);
    }

    #[test]
    fn quantiles_stay_bracketed_after_merge(a in samples(64), b in samples(64)) {
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        if merged.count > 0 {
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                let v = merged.quantile(q);
                prop_assert!(v >= merged.min && v <= merged.max, "q={} v={}", q, v);
            }
            prop_assert_eq!(merged.quantile(0.0), merged.min);
            prop_assert_eq!(merged.quantile(1.0), merged.max);
        }
    }
}
