//! Multi-threaded Monte Carlo shot runners (one decode per call).
//!
//! The sequential runners in [`crate::run_code_capacity`] and
//! [`crate::run_circuit_level`] decode a single stream (matching the
//! paper's latency methodology). For *throughput* — LER estimation over
//! many shots — these runners fan shots out across threads via the shared
//! [`crate::engine`] policy: per-thread decoder instances built from the
//! factory, thread `t` seeded `config.seed + t`, reports concatenated in
//! thread order. Aggregate statistics are identical in distribution; the
//! exact shot stream differs from the sequential runner (one seed per
//! thread), which is recorded in the report's workload label.
//!
//! For batched decoding within each thread (amortizing per-call overhead
//! through [`crate::decoders::SyndromeDecoder::decode_batch`]), see
//! [`crate::run_code_capacity_batched`].

use crate::code_capacity::CodeCapacityConfig;
use crate::decoders::DecoderFactory;
use crate::engine;
use crate::report::RunReport;
use crate::CircuitLevelConfig;
use qldpc_circuit::DetectorErrorModel;
use qldpc_codes::CssCode;

/// Runs a code-capacity experiment across `threads` worker threads.
///
/// Shots are split evenly; thread `t` uses seed `config.seed + t`. Records
/// are concatenated in thread order.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// use qldpc_codes::bb;
/// use qldpc_sim::{decoders, run_code_capacity_parallel, CodeCapacityConfig};
///
/// let report = run_code_capacity_parallel(
///     &bb::bb72(),
///     &CodeCapacityConfig { p: 0.02, shots: 40, seed: 1 },
///     &decoders::plain_bp(50),
///     2,
/// );
/// assert_eq!(report.shots, 40);
/// ```
pub fn run_code_capacity_parallel(
    code: &CssCode,
    config: &CodeCapacityConfig,
    factory: &DecoderFactory,
    threads: usize,
) -> RunReport {
    let reports = engine::fan_out(config.shots, threads, |t, shots| {
        crate::run_code_capacity(
            code,
            &CodeCapacityConfig {
                p: config.p,
                shots,
                seed: config.seed + t as u64,
            },
            factory,
        )
    });
    engine::merge_reports(reports, &format!("[{threads}T]"))
}

/// Runs a circuit-level experiment across `threads` worker threads; see
/// [`run_code_capacity_parallel`] for the seeding scheme.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_circuit_level_parallel(
    dem: &DetectorErrorModel,
    workload: &str,
    config: &CircuitLevelConfig,
    factory: &DecoderFactory,
    threads: usize,
) -> RunReport {
    let reports = engine::fan_out(config.shots, threads, |t, shots| {
        crate::run_circuit_level(
            dem,
            workload,
            &CircuitLevelConfig {
                shots,
                seed: config.seed + t as u64,
            },
            factory,
        )
    });
    engine::merge_reports(reports, &format!("[{threads}T]"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoders;
    use qldpc_circuit::{MemoryExperiment, NoiseModel};
    use qldpc_codes::bb;

    #[test]
    fn parallel_capacity_run_covers_all_shots() {
        let code = bb::bb72();
        let report = run_code_capacity_parallel(
            &code,
            &CodeCapacityConfig {
                p: 0.02,
                shots: 30,
                seed: 3,
            },
            &decoders::plain_bp(30),
            2,
        );
        assert_eq!(report.shots, 30);
        assert_eq!(report.records.len(), 30);
        assert!(report.workload.contains("[2T]"));
    }

    #[test]
    fn parallel_circuit_run_matches_sequential_statistics() {
        let code = bb::bb72();
        let dem = MemoryExperiment::memory_z(&code, 2, &NoiseModel::uniform_depolarizing(2e-3))
            .detector_error_model();
        let factory = decoders::bp_osd(40, 10);
        let seq = crate::run_circuit_level(
            &dem,
            "bb72",
            &CircuitLevelConfig { shots: 40, seed: 9 },
            &factory,
        );
        let par = run_circuit_level_parallel(
            &dem,
            "bb72",
            &CircuitLevelConfig { shots: 40, seed: 9 },
            &factory,
            2,
        );
        assert_eq!(par.shots, seq.shots);
        // Different shot streams, but both must solve everything at this
        // noise level.
        assert_eq!(par.unsolved, 0);
        assert_eq!(seq.unsolved, 0);
    }
}
