//! Multi-threaded Monte Carlo shot runners.
//!
//! The sequential runners in [`crate::run_code_capacity`] and
//! [`crate::run_circuit_level`] decode a single stream (matching the
//! paper's latency methodology). For *throughput* — LER estimation over
//! many shots — this module fans shots out across threads, each with its
//! own decoder instances and a derived RNG seed. Aggregate statistics are
//! identical in distribution; the exact shot stream differs from the
//! sequential runner (one seed per thread), which is recorded in the
//! report's workload label.

use crate::code_capacity::CodeCapacityConfig;
use crate::decoders::DecoderFactory;
use crate::report::RunReport;
use crate::CircuitLevelConfig;
use qldpc_circuit::DetectorErrorModel;
use qldpc_codes::CssCode;

/// Runs a code-capacity experiment across `threads` worker threads.
///
/// Shots are split evenly; thread `t` uses seed `config.seed + t`. Records
/// are concatenated in thread order.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// use qldpc_codes::bb;
/// use qldpc_sim::{decoders, run_code_capacity_parallel, CodeCapacityConfig};
///
/// let report = run_code_capacity_parallel(
///     &bb::bb72(),
///     &CodeCapacityConfig { p: 0.02, shots: 40, seed: 1 },
///     &decoders::plain_bp(50),
///     2,
/// );
/// assert_eq!(report.shots, 40);
/// ```
pub fn run_code_capacity_parallel(
    code: &CssCode,
    config: &CodeCapacityConfig,
    factory: &DecoderFactory,
    threads: usize,
) -> RunReport {
    assert!(threads > 0, "need at least one thread");
    let chunks = split_shots(config.shots, threads);
    let reports: Vec<RunReport> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(t, &shots)| {
                let sub = CodeCapacityConfig {
                    p: config.p,
                    shots,
                    seed: config.seed + t as u64,
                };
                scope.spawn(move |_| crate::run_code_capacity(code, &sub, factory))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope panicked");
    merge_reports(reports, threads)
}

/// Runs a circuit-level experiment across `threads` worker threads; see
/// [`run_code_capacity_parallel`] for the seeding scheme.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn run_circuit_level_parallel(
    dem: &DetectorErrorModel,
    workload: &str,
    config: &CircuitLevelConfig,
    factory: &DecoderFactory,
    threads: usize,
) -> RunReport {
    assert!(threads > 0, "need at least one thread");
    let chunks = split_shots(config.shots, threads);
    let reports: Vec<RunReport> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(t, &shots)| {
                let sub = CircuitLevelConfig {
                    shots,
                    seed: config.seed + t as u64,
                };
                scope.spawn(move |_| crate::run_circuit_level(dem, workload, &sub, factory))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope panicked");
    merge_reports(reports, threads)
}

fn split_shots(total: usize, threads: usize) -> Vec<usize> {
    let base = total / threads;
    let extra = total % threads;
    (0..threads)
        .map(|t| base + usize::from(t < extra))
        .filter(|&s| s > 0)
        .collect()
}

fn merge_reports(reports: Vec<RunReport>, threads: usize) -> RunReport {
    let mut iter = reports.into_iter();
    let mut merged = iter.next().expect("at least one report");
    merged.workload = format!("{} [{}T]", merged.workload, threads);
    for r in iter {
        merged.shots += r.shots;
        merged.failures += r.failures;
        merged.unsolved += r.unsolved;
        merged.records.extend(r.records);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoders;
    use qldpc_circuit::{MemoryExperiment, NoiseModel};
    use qldpc_codes::bb;

    #[test]
    fn shot_splitting_is_exact() {
        assert_eq!(split_shots(10, 3), vec![4, 3, 3]);
        assert_eq!(split_shots(2, 4), vec![1, 1]);
        assert_eq!(split_shots(9, 1), vec![9]);
    }

    #[test]
    fn parallel_capacity_run_covers_all_shots() {
        let code = bb::bb72();
        let report = run_code_capacity_parallel(
            &code,
            &CodeCapacityConfig {
                p: 0.02,
                shots: 30,
                seed: 3,
            },
            &decoders::plain_bp(30),
            2,
        );
        assert_eq!(report.shots, 30);
        assert_eq!(report.records.len(), 30);
        assert!(report.workload.contains("[2T]"));
    }

    #[test]
    fn parallel_circuit_run_matches_sequential_statistics() {
        let code = bb::bb72();
        let dem = MemoryExperiment::memory_z(&code, 2, &NoiseModel::uniform_depolarizing(2e-3))
            .detector_error_model();
        let factory = decoders::bp_osd(40, 10);
        let seq = crate::run_circuit_level(
            &dem,
            "bb72",
            &CircuitLevelConfig { shots: 40, seed: 9 },
            &factory,
        );
        let par = run_circuit_level_parallel(
            &dem,
            "bb72",
            &CircuitLevelConfig { shots: 40, seed: 9 },
            &factory,
            2,
        );
        assert_eq!(par.shots, seq.shots);
        // Different shot streams, but both must solve everything at this
        // noise level.
        assert_eq!(par.unsolved, 0);
        assert_eq!(seq.unsolved, 0);
    }
}
