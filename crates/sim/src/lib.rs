//! Monte Carlo simulation harness for the BP-SF reproduction.
//!
//! Ties the stack together: noise sampling (code-capacity and
//! circuit-level), a uniform [`SyndromeDecoder`] interface over plain BP,
//! BP-OSD and BP-SF, logical-error-rate estimation with per-round
//! conversion (paper Eq. 11), wall-clock and iteration-count statistics,
//! and the analytic hardware latency model used for the paper's GPU
//! estimate and FPGA discussion.
//!
//! # Examples
//!
//! ```
//! use qldpc_codes::bb;
//! use qldpc_sim::{decoders, run_code_capacity, CodeCapacityConfig};
//!
//! let code = bb::bb72();
//! let config = CodeCapacityConfig { p: 0.02, shots: 50, seed: 7 };
//! let report = run_code_capacity(&code, &config, &decoders::plain_bp(100));
//! assert_eq!(report.shots, 50);
//! assert!(report.ler() <= 1.0);
//! ```

mod batch;
mod circuit_level;
mod code_capacity;
pub mod decoders;
mod engine;
mod latency;
mod parallel_runner;
mod report;
mod streaming;

pub use batch::{run_circuit_level_batched, run_code_capacity_batched, BatchConfig};
pub use circuit_level::{run_circuit_level, CircuitLevelConfig};
pub use code_capacity::{run_code_capacity, sample_depolarizing, CodeCapacityConfig};
pub use decoders::{DecodeOutcome, DecoderFactory, SyndromeDecoder};
pub use latency::HardwareLatencyModel;
pub use parallel_runner::{run_circuit_level_parallel, run_code_capacity_parallel};
pub use report::{RunReport, ShotRecord};
pub use streaming::{
    run_streaming, run_streaming_offline_reference, stream_syndrome_rounds, StreamingConfig,
    StreamingReport,
};
// Percentile/latency statistics live in `bpsf_core::stats` (shared with
// the `qldpc-server` metrics); re-exported here so sim's public API is
// unchanged.
pub use bpsf_core::stats::{percentile, LatencyStats};

/// Converts an end-to-end logical error rate over `rounds` rounds into a
/// per-round rate via the paper's Eq. 11: `1 − (1 − LER)^(1/d)`.
///
/// # Examples
///
/// ```
/// let per_round = qldpc_sim::ler_per_round(0.3, 10);
/// assert!(per_round > 0.03 && per_round < 0.04);
/// assert_eq!(qldpc_sim::ler_per_round(0.0, 5), 0.0);
/// ```
pub fn ler_per_round(ler: f64, rounds: usize) -> f64 {
    assert!(rounds > 0, "rounds must be positive");
    1.0 - (1.0 - ler).powf(1.0 / rounds as f64)
}
