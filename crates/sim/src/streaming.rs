//! Streaming (sliding-window) Monte Carlo runs through the decode
//! service.
//!
//! The offline circuit-level runner hands each decoder the *whole*
//! rounds-deep syndrome at once; this runner feeds the same shots to
//! [`qldpc_server`] streaming sessions **round by round**, the way a
//! real-time decoder receives them, and judges the committed global
//! correction with exactly the same logical-error criterion. Producer
//! threads interleave many concurrent streams so window submissions
//! micro-batch inside the service — the throughput configuration the
//! paper's service argument is about.

use crate::report::RunReport;
use qldpc_circuit::{DemSampler, DetectorErrorModel, Shot};
use qldpc_decoder_api::{WindowDecoderFactory, WindowPlan};
use qldpc_gf2::BitVec;
use qldpc_server::{DecodeService, ServiceConfig, StreamError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Number of Monte Carlo shots (streams).
    pub shots: usize,
    /// RNG seed. The same seed produces the same shots as
    /// [`run_circuit_level`](crate::run_circuit_level) — the offline and
    /// streaming runners consume the RNG identically, so parity checks
    /// compare decodings of *identical* error patterns.
    pub seed: u64,
    /// Producer threads, each interleaving its share of the streams
    /// round by round.
    pub threads: usize,
    /// Shard workers of the decode service.
    pub shards: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            shots: 100,
            seed: 0,
            threads: 2,
            shards: 2,
        }
    }
}

/// The outcome of a streaming run: the same failure accounting as the
/// offline [`RunReport`], plus streaming throughput.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// Window decoder label.
    pub decoder: String,
    /// Workload description.
    pub workload: String,
    /// Streams decoded.
    pub shots: usize,
    /// Streams that ended in a logical error (unsolved streams count as
    /// failures, matching the offline scorer).
    pub failures: usize,
    /// Streams with at least one window whose correction did not
    /// satisfy its residual syndrome.
    pub unsolved: usize,
    /// Detector-round blocks per stream.
    pub rounds: usize,
    /// Wall-clock time of the whole run (all threads, submission to
    /// final commit).
    pub wall: Duration,
}

impl StreamingReport {
    /// Logical error rate over the full stream.
    pub fn ler(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }

    /// Sustained throughput in detector-round blocks per second,
    /// aggregated over all concurrent streams.
    pub fn rounds_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.shots * self.rounds) as f64 / secs
        }
    }

    /// One-line summary for logs and bench output.
    pub fn summary(&self) -> String {
        format!(
            "{} on {}: shots={} failures={} unsolved={} ler={:.3e} rounds/s={:.0}",
            self.decoder,
            self.workload,
            self.shots,
            self.failures,
            self.unsolved,
            self.ler(),
            self.rounds_per_sec(),
        )
    }
}

/// Runs a windowed streaming experiment: samples `config.shots` shots
/// from the DEM (identically to the offline runner at the same seed),
/// streams each through its own service session round by round, and
/// scores the committed corrections.
///
/// # Panics
///
/// Panics on a degenerate config (zero shots/threads/shards), if the
/// plan does not match the DEM, or if the service fails mid-run (worker
/// loss — impossible with the in-tree BP window decoders).
pub fn run_streaming(
    dem: &DetectorErrorModel,
    plan: Arc<WindowPlan>,
    workload: &str,
    config: &StreamingConfig,
    factory: WindowDecoderFactory,
) -> StreamingReport {
    assert!(config.shots > 0, "need at least one shot");
    assert!(config.threads > 0, "need at least one producer thread");
    assert!(config.shards > 0, "need at least one shard");
    assert_eq!(
        plan.num_detectors,
        dem.num_detectors(),
        "plan was built for a different model"
    );

    // Label from a throwaway instance; the factory itself goes to the
    // service, which builds one decoder per shard worker.
    let decoder_label = factory(Arc::clone(&plan)).label();

    let sampler = DemSampler::new(dem);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let shots = sampler.sample_batch(&mut rng, config.shots);

    let mut builder = DecodeService::builder();
    let code = builder.register_streaming_code_with(
        "streaming-run",
        Arc::clone(&plan),
        factory,
        ServiceConfig {
            shards: config.shards,
            max_wait: Duration::from_micros(100),
            ..Default::default()
        },
    );
    let service = builder.start();

    let k = plan.dets_per_round;
    let num_rounds = plan.num_round_blocks;
    let started = Instant::now();
    let chunks: Vec<&[Shot]> = shots
        .chunks(config.shots.div_ceil(config.threads))
        .collect();
    let per_thread: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let service = &service;
                scope.spawn(move || {
                    // All of this thread's streams advance in lockstep:
                    // their same-index windows land in the shard queues
                    // together and coalesce into one kernel tile.
                    let mut sessions: Vec<_> = chunk
                        .iter()
                        .map(|_| service.stream_session(code).expect("session opens"))
                        .collect();
                    for r in 0..num_rounds {
                        for (session, shot) in sessions.iter_mut().zip(chunk) {
                            let round = shot.syndrome.slice(r * k..(r + 1) * k);
                            session
                                .push_round(&round)
                                .unwrap_or_else(|e: StreamError| panic!("stream failed: {e}"));
                        }
                    }
                    let mut failures = 0usize;
                    let mut unsolved = 0usize;
                    for (session, shot) in sessions.into_iter().zip(chunk) {
                        let result = session
                            .finish()
                            .unwrap_or_else(|e| panic!("stream failed: {e}"));
                        if !result.all_solved {
                            unsolved += 1;
                            failures += 1;
                        } else if dem.is_logical_error(&shot.obs_flips, &result.error_hat) {
                            failures += 1;
                        }
                    }
                    (failures, unsolved)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("producer thread panicked"))
            .collect()
    });
    let wall = started.elapsed();
    service.shutdown();

    let (failures, unsolved) = per_thread
        .into_iter()
        .fold((0, 0), |(f, u), (df, du)| (f + df, u + du));
    StreamingReport {
        decoder: decoder_label,
        workload: workload.to_string(),
        shots: config.shots,
        failures,
        unsolved,
        rounds: num_rounds,
        wall,
    }
}

/// Convenience: the offline reference for a streaming run — the same
/// shots (same seed), decoded whole by `factory` against the full DEM.
/// Thin wrapper over [`run_circuit_level`](crate::run_circuit_level)
/// kept here so parity checks read as one obvious pair.
pub fn run_streaming_offline_reference(
    dem: &DetectorErrorModel,
    workload: &str,
    config: &StreamingConfig,
    factory: &crate::DecoderFactory,
) -> RunReport {
    crate::run_circuit_level(
        dem,
        workload,
        &crate::CircuitLevelConfig {
            shots: config.shots,
            seed: config.seed,
        },
        factory,
    )
}

/// Helper for sanity checks: a one-window plan's streaming decode must
/// reproduce the offline decode bit for bit (no spill, no carry).
pub fn stream_syndrome_rounds(syndrome: &BitVec, dets_per_round: usize) -> Vec<BitVec> {
    assert_eq!(syndrome.len() % dets_per_round, 0);
    (0..syndrome.len() / dets_per_round)
        .map(|r| syndrome.slice(r * dets_per_round..(r + 1) * dets_per_round))
        .collect()
}
