//! Code-capacity Monte Carlo runs.

use crate::decoders::DecoderFactory;
use crate::report::{RunReport, ShotRecord};
use qldpc_codes::CssCode;
use qldpc_gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Configuration of a code-capacity run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCapacityConfig {
    /// Physical error rate: each data qubit suffers X, Y or Z with
    /// probability `p/3` each (paper §V-A).
    pub p: f64,
    /// Number of Monte Carlo shots.
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Samples one depolarizing error, returning its `(x_component,
/// z_component)` as bit vectors over the data qubits.
///
/// A `Y` error contributes to both components, which is exactly how CSS
/// decoding splits it.
pub fn sample_depolarizing(n: usize, p: f64, rng: &mut StdRng) -> (BitVec, BitVec) {
    let mut ex = BitVec::zeros(n);
    let mut ez = BitVec::zeros(n);
    for i in 0..n {
        let r: f64 = rng.random();
        if r < p / 3.0 {
            ex.set(i, true); // X
        } else if r < 2.0 * p / 3.0 {
            ez.set(i, true); // Z
        } else if r < p {
            ex.set(i, true); // Y
            ez.set(i, true);
        }
    }
    (ex, ez)
}

/// Runs a code-capacity experiment: X errors are decoded from Z-check
/// syndromes and judged against logical-Z operators; Z errors dually. A
/// shot fails if either basis fails (decoder unsolved or residual logical).
///
/// The decoder priors are set to `2p/3` per qubit — the marginal
/// probability of an X (or Z) component under X/Y/Z-each-`p/3` noise.
///
/// # Examples
///
/// ```
/// use qldpc_codes::bb;
/// use qldpc_sim::{decoders, run_code_capacity, CodeCapacityConfig};
///
/// let report = run_code_capacity(
///     &bb::bb72(),
///     &CodeCapacityConfig { p: 0.01, shots: 20, seed: 1 },
///     &decoders::plain_bp(50),
/// );
/// assert_eq!(report.shots, 20);
/// ```
pub fn run_code_capacity(
    code: &CssCode,
    config: &CodeCapacityConfig,
    factory: &DecoderFactory,
) -> RunReport {
    let n = code.n();
    let marginal = 2.0 * config.p / 3.0;
    let priors = vec![marginal; n];
    let mut dec_x = factory(code.hz(), &priors); // Z checks see X errors
    let mut dec_z = factory(code.hx(), &priors); // X checks see Z errors
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut records = Vec::with_capacity(config.shots);
    let mut failures = 0usize;
    let mut unsolved = 0usize;
    for _ in 0..config.shots {
        let (ex, ez) = sample_depolarizing(n, config.p, &mut rng);
        let sx = code.hz().mul_vec(&ex);
        let sz = code.hx().mul_vec(&ez);

        let start = Instant::now();
        let out_x = dec_x.decode_syndrome(&sx);
        let out_z = dec_z.decode_syndrome(&sz);
        let wall_ns = start.elapsed().as_nanos() as u64;

        let (record, shot_unsolved) = score_shot(code, &out_x, &out_z, &ex, &ez, wall_ns);
        if record.failed {
            failures += 1;
        }
        if shot_unsolved {
            unsolved += 1;
        }
        records.push(record);
    }

    RunReport {
        decoder: dec_x.label(),
        precision: dec_x.precision(),
        workload: format!("{} code-capacity p={}", code.name(), config.p),
        shots: config.shots,
        failures,
        unsolved,
        records,
    }
}

/// Scores one decoded code-capacity shot — the single definition of
/// logical failure and unsolved accounting, shared by the sequential
/// ([`run_code_capacity`]) and batched ([`crate::run_code_capacity_batched`])
/// runners so their statistics can never drift apart.
///
/// Returns the shot record and whether either basis was unsolved.
pub(crate) fn score_shot(
    code: &CssCode,
    out_x: &crate::DecodeOutcome,
    out_z: &crate::DecodeOutcome,
    ex: &BitVec,
    ez: &BitVec,
    wall_ns: u64,
) -> (ShotRecord, bool) {
    let mut unsolved = false;
    let mut failed = false;
    if out_x.solved {
        if code.is_x_logical_error(&(&out_x.error_hat ^ ex)) {
            failed = true;
        }
    } else {
        unsolved = true;
        failed = true;
    }
    if out_z.solved {
        if code.is_z_logical_error(&(&out_z.error_hat ^ ez)) {
            failed = true;
        }
    } else {
        unsolved = true;
        failed = true;
    }
    let record = ShotRecord {
        wall_ns,
        serial_iterations: out_x.serial_iterations + out_z.serial_iterations,
        critical_iterations: out_x.critical_iterations.max(out_z.critical_iterations),
        postprocessed: out_x.postprocessed || out_z.postprocessed,
        failed,
    };
    (record, unsolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoders;
    use qldpc_codes::bb;

    #[test]
    fn depolarizing_components_correlate_through_y() {
        let mut rng = StdRng::seed_from_u64(11);
        let (ex, ez) = sample_depolarizing(10_000, 0.3, &mut rng);
        let x_rate = ex.weight() as f64 / 10_000.0;
        let z_rate = ez.weight() as f64 / 10_000.0;
        // Each component has marginal 2p/3 = 0.2.
        assert!((x_rate - 0.2).abs() < 0.02, "x rate {x_rate}");
        assert!((z_rate - 0.2).abs() < 0.02, "z rate {z_rate}");
        // Overlap = Y rate = p/3.
        let mut overlap = 0usize;
        for i in 0..10_000 {
            if ex.get(i) && ez.get(i) {
                overlap += 1;
            }
        }
        assert!((overlap as f64 / 10_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn zero_noise_never_fails() {
        let report = run_code_capacity(
            &bb::bb72(),
            &CodeCapacityConfig {
                p: 0.0,
                shots: 5,
                seed: 2,
            },
            &decoders::plain_bp(10),
        );
        assert_eq!(report.failures, 0);
        assert_eq!(report.unsolved, 0);
        assert_eq!(report.ler(), 0.0);
    }

    #[test]
    fn reports_record_decoder_precision() {
        use qldpc_decoder_api::Precision;
        let config = CodeCapacityConfig {
            p: 0.01,
            shots: 5,
            seed: 3,
        };
        let f32_report = run_code_capacity(
            &bb::bb72(),
            &config,
            &decoders::plain_bp_at(20, Precision::F32),
        );
        assert_eq!(f32_report.precision, Precision::F32);
        assert!(f32_report.decoder.ends_with("@f32"));
        assert!(f32_report.tsv_row(None).contains("\tf32\t"));
        let f64_report = run_code_capacity(&bb::bb72(), &config, &decoders::plain_bp(20));
        assert_eq!(f64_report.precision, Precision::F64);
        assert!(f64_report.tsv_row(None).contains("\tf64\t"));
    }

    #[test]
    fn bp_osd_beats_unaided_bp_at_moderate_noise() {
        // Statistical smoke test with a fixed seed: BP-OSD's LER must not
        // exceed plain BP's on the same shot stream.
        let code = bb::bb72();
        let config = CodeCapacityConfig {
            p: 0.05,
            shots: 120,
            seed: 42,
        };
        let bp = run_code_capacity(&code, &config, &decoders::plain_bp(30));
        let osd = run_code_capacity(&code, &config, &decoders::bp_osd(30, 10));
        assert_eq!(osd.unsolved, 0, "OSD always solves");
        assert!(
            osd.failures <= bp.failures,
            "OSD {} vs BP {}",
            osd.failures,
            bp.failures
        );
    }
}
