//! Circuit-level Monte Carlo runs over detector error models.

use crate::decoders::DecoderFactory;
use crate::report::{RunReport, ShotRecord};
use qldpc_circuit::{DemSampler, DetectorErrorModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration of a circuit-level run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitLevelConfig {
    /// Number of Monte Carlo shots.
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Runs a circuit-level experiment against a pre-built detector error
/// model: shots are sampled from the DEM, decoded, and judged by whether
/// the predicted observable flips match the true ones.
///
/// Syndromes are decoded **sequentially** (streaming), matching the
/// paper's measurement methodology ("decoding them sequentially is more
/// aligned with real-world use cases").
///
/// # Examples
///
/// ```
/// use qldpc_circuit::{MemoryExperiment, NoiseModel};
/// use qldpc_codes::bb;
/// use qldpc_sim::{decoders, run_circuit_level, CircuitLevelConfig};
///
/// let exp = MemoryExperiment::memory_z(&bb::bb72(), 2, &NoiseModel::uniform_depolarizing(1e-3));
/// let dem = exp.detector_error_model();
/// let report = run_circuit_level(&dem, "bb72 r2", &CircuitLevelConfig { shots: 10, seed: 3 },
///                                &decoders::plain_bp(50));
/// assert_eq!(report.shots, 10);
/// ```
pub fn run_circuit_level(
    dem: &DetectorErrorModel,
    workload: &str,
    config: &CircuitLevelConfig,
    factory: &DecoderFactory,
) -> RunReport {
    let mut decoder = factory(dem.check_matrix(), dem.priors());
    let sampler = DemSampler::new(dem);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut records = Vec::with_capacity(config.shots);
    let mut failures = 0usize;
    let mut unsolved = 0usize;
    for _ in 0..config.shots {
        let shot = sampler.sample(&mut rng);
        let start = Instant::now();
        let out = decoder.decode_syndrome(&shot.syndrome);
        let wall_ns = start.elapsed().as_nanos() as u64;

        let (record, shot_unsolved) = score_shot(dem, &shot.obs_flips, &out, wall_ns);
        if record.failed {
            failures += 1;
        }
        if shot_unsolved {
            unsolved += 1;
        }
        records.push(record);
    }

    RunReport {
        decoder: decoder.label(),
        precision: decoder.precision(),
        workload: workload.to_string(),
        shots: config.shots,
        failures,
        unsolved,
        records,
    }
}

/// Scores one decoded circuit-level shot — the single definition of
/// logical failure and unsolved accounting, shared by the sequential
/// ([`run_circuit_level`]) and batched
/// ([`crate::run_circuit_level_batched`]) runners so their statistics can
/// never drift apart.
///
/// Returns the shot record and whether the shot was unsolved.
pub(crate) fn score_shot(
    dem: &DetectorErrorModel,
    true_obs_flips: &qldpc_gf2::BitVec,
    out: &crate::DecodeOutcome,
    wall_ns: u64,
) -> (ShotRecord, bool) {
    let (failed, unsolved) = if out.solved {
        (dem.is_logical_error(true_obs_flips, &out.error_hat), false)
    } else {
        (true, true)
    };
    let record = ShotRecord {
        wall_ns,
        serial_iterations: out.serial_iterations,
        critical_iterations: out.critical_iterations,
        postprocessed: out.postprocessed,
        failed,
    };
    (record, unsolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoders;
    use qldpc_circuit::{MemoryExperiment, NoiseModel};
    use qldpc_codes::bb;

    fn dem(p: f64, rounds: usize) -> DetectorErrorModel {
        MemoryExperiment::memory_z(&bb::bb72(), rounds, &NoiseModel::uniform_depolarizing(p))
            .detector_error_model()
    }

    #[test]
    fn low_noise_mostly_succeeds_with_bp_osd() {
        let dem = dem(5e-4, 2);
        let report = run_circuit_level(
            &dem,
            "bb72 r2 p=5e-4",
            &CircuitLevelConfig { shots: 60, seed: 4 },
            &decoders::bp_osd(60, 10),
        );
        assert_eq!(report.unsolved, 0);
        assert!(
            report.ler() < 0.2,
            "unexpectedly high circuit-level LER {}",
            report.ler()
        );
    }

    #[test]
    fn per_round_rate_below_total() {
        let dem = dem(2e-3, 3);
        let report = run_circuit_level(
            &dem,
            "bb72 r3",
            &CircuitLevelConfig { shots: 40, seed: 5 },
            &decoders::plain_bp(40),
        );
        assert!(report.ler_per_round(3) <= report.ler() + 1e-12);
    }

    #[test]
    fn records_track_postprocessing() {
        let dem = dem(4e-3, 2);
        let report = run_circuit_level(
            &dem,
            "bb72 r2 hot",
            &CircuitLevelConfig { shots: 50, seed: 6 },
            &decoders::bp_sf(bpsf_core::BpSfConfig::circuit_level(40, 20, 3, 3)),
        );
        assert_eq!(report.records.len(), 50);
        for r in &report.records {
            assert!(r.critical_iterations <= r.serial_iterations || !r.postprocessed);
        }
    }
}
