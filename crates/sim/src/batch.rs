//! Batched, thread-parallel Monte Carlo runners.
//!
//! The throughput path for LER sweeps: shots fan out across threads (per
//! the [`crate::engine`] policy — per-thread decoder instances, thread
//! `t` seeded `seed + t`), and *within* each thread syndromes are decoded
//! in groups of [`BatchConfig::batch_size`] via
//! [`crate::SyndromeDecoder::decode_batch`]. The batch width is passed
//! through verbatim, so decoders with a real batch engine get full-width
//! calls: plain BP routes them to `qldpc_bp::BatchMinSumDecoder`'s
//! shot-interleaved kernel, and BP-SF and BP-OSD batch their initial BP
//! stage the same way (post-processing only the failed shots serially).
//! Syndrome *generation* is batched too: each sampled group's syndromes
//! come from the bit-sliced `SparseBitMatrix::mul_batch` kernel — 64
//! shots per word-XOR pass — rather than a per-shot Tanner-graph walk.
//!
//! For *deterministic* decoders (plain BP, BP-OSD, serial BP-SF),
//! failure statistics are **bit-identical** to the same-seed sequential
//! runners: sampling consumes the shot RNG in the same order, and
//! `decode_batch` is contractually equivalent to the sequential decode
//! loop. The worker-pool `ParallelBpSf` is the exception — its winning
//! trial depends on worker scheduling, so per-shot outcomes (and thus
//! failure counts) can vary across runs under any runner, sequential or
//! batched. `wall_ns` also differs here: it is measured per batch and
//! amortized evenly over the batch's shots, so per-shot latency
//! percentiles from a batched run are approximations; use the sequential
//! runners for the paper's latency methodology.

use crate::code_capacity::{sample_depolarizing, CodeCapacityConfig};
use crate::decoders::DecoderFactory;
use crate::engine;
use crate::report::RunReport;
use crate::CircuitLevelConfig;
use qldpc_circuit::{DemSampler, DetectorErrorModel};
use qldpc_codes::CssCode;
use qldpc_gf2::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Thread/batch shape of a batched run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads (each with its own decoder instances and seed).
    pub threads: usize,
    /// Syndromes per `decode_batch` call within a thread.
    pub batch_size: usize,
}

impl BatchConfig {
    /// `threads` workers with the default batch size of 32.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            batch_size: 32,
        }
    }
}

impl Default for BatchConfig {
    /// One thread per available core, batch size 32.
    fn default() -> Self {
        Self::with_threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }
}

/// Runs a code-capacity experiment batched across `batch.threads`
/// threads; thread `t` uses seed `config.seed + t`, identical to
/// [`crate::run_code_capacity_parallel`]'s seeding.
///
/// # Panics
///
/// Panics if `batch.threads == 0` or `batch.batch_size == 0`.
///
/// # Examples
///
/// ```
/// use qldpc_codes::bb;
/// use qldpc_sim::{decoders, run_code_capacity_batched, BatchConfig, CodeCapacityConfig};
///
/// let report = run_code_capacity_batched(
///     &bb::bb72(),
///     &CodeCapacityConfig { p: 0.02, shots: 40, seed: 1 },
///     &decoders::plain_bp(50),
///     &BatchConfig { threads: 2, batch_size: 8 },
/// );
/// assert_eq!(report.shots, 40);
/// ```
pub fn run_code_capacity_batched(
    code: &CssCode,
    config: &CodeCapacityConfig,
    factory: &DecoderFactory,
    batch: &BatchConfig,
) -> RunReport {
    assert!(batch.batch_size > 0, "need a positive batch size");
    let reports = engine::fan_out(config.shots, batch.threads, |t, shots| {
        code_capacity_chunk(
            code,
            &CodeCapacityConfig {
                p: config.p,
                shots,
                seed: config.seed + t as u64,
            },
            factory,
            batch.batch_size,
        )
    });
    engine::merge_reports(
        reports,
        &format!("[{}T,batch={}]", batch.threads, batch.batch_size),
    )
}

/// One thread's worth of batched code-capacity shots.
fn code_capacity_chunk(
    code: &CssCode,
    config: &CodeCapacityConfig,
    factory: &DecoderFactory,
    batch_size: usize,
) -> RunReport {
    let n = code.n();
    let marginal = 2.0 * config.p / 3.0;
    let priors = vec![marginal; n];
    let mut dec_x = factory(code.hz(), &priors); // Z checks see X errors
    let mut dec_z = factory(code.hx(), &priors); // X checks see Z errors
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut records = Vec::with_capacity(config.shots);
    let mut failures = 0usize;
    let mut unsolved = 0usize;
    let mut remaining = config.shots;
    while remaining > 0 {
        let this_batch = remaining.min(batch_size);
        remaining -= this_batch;

        let mut exs = Vec::with_capacity(this_batch);
        let mut ezs = Vec::with_capacity(this_batch);
        for _ in 0..this_batch {
            let (ex, ez) = sample_depolarizing(n, config.p, &mut rng);
            exs.push(ex);
            ezs.push(ez);
        }
        // Bit-sliced batch syndrome check: identical to per-shot
        // `mul_vec`, 64 shots per word-XOR pass.
        let sxs = code.hz().mul_batch(&exs);
        let szs = code.hx().mul_batch(&ezs);

        let start = Instant::now();
        let outs_x = dec_x.decode_batch(&sxs);
        let outs_z = dec_z.decode_batch(&szs);
        let wall_ns = (start.elapsed().as_nanos() as u64) / this_batch as u64;
        assert_eq!(
            outs_x.len(),
            this_batch,
            "decode_batch must return one outcome per syndrome ({})",
            dec_x.label()
        );
        assert_eq!(
            outs_z.len(),
            this_batch,
            "decode_batch must return one outcome per syndrome ({})",
            dec_z.label()
        );

        for i in 0..this_batch {
            let (record, shot_unsolved) = crate::code_capacity::score_shot(
                code, &outs_x[i], &outs_z[i], &exs[i], &ezs[i], wall_ns,
            );
            failures += usize::from(record.failed);
            unsolved += usize::from(shot_unsolved);
            records.push(record);
        }
    }

    RunReport {
        decoder: dec_x.label(),
        precision: dec_x.precision(),
        workload: format!("{} code-capacity p={}", code.name(), config.p),
        shots: config.shots,
        failures,
        unsolved,
        records,
    }
}

/// Runs a circuit-level experiment batched across `batch.threads`
/// threads; see [`run_code_capacity_batched`] for the seeding and timing
/// semantics.
///
/// # Panics
///
/// Panics if `batch.threads == 0` or `batch.batch_size == 0`.
pub fn run_circuit_level_batched(
    dem: &DetectorErrorModel,
    workload: &str,
    config: &CircuitLevelConfig,
    factory: &DecoderFactory,
    batch: &BatchConfig,
) -> RunReport {
    assert!(batch.batch_size > 0, "need a positive batch size");
    let reports = engine::fan_out(config.shots, batch.threads, |t, shots| {
        circuit_level_chunk(
            dem,
            workload,
            &CircuitLevelConfig {
                shots,
                seed: config.seed + t as u64,
            },
            factory,
            batch.batch_size,
        )
    });
    engine::merge_reports(
        reports,
        &format!("[{}T,batch={}]", batch.threads, batch.batch_size),
    )
}

/// One thread's worth of batched circuit-level shots.
fn circuit_level_chunk(
    dem: &DetectorErrorModel,
    workload: &str,
    config: &CircuitLevelConfig,
    factory: &DecoderFactory,
    batch_size: usize,
) -> RunReport {
    let mut decoder = factory(dem.check_matrix(), dem.priors());
    let sampler = DemSampler::new(dem);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut records = Vec::with_capacity(config.shots);
    let mut failures = 0usize;
    let mut unsolved = 0usize;
    let mut remaining = config.shots;
    while remaining > 0 {
        let this_batch = remaining.min(batch_size);
        remaining -= this_batch;

        // Same RNG stream as a per-shot `sample` loop; syndromes and
        // observables come from the bit-sliced batch kernel.
        let shots = sampler.sample_batch(&mut rng, this_batch);
        let syndromes: Vec<BitVec> = shots.iter().map(|s| s.syndrome.clone()).collect();

        let start = Instant::now();
        let outs = decoder.decode_batch(&syndromes);
        let wall_ns = (start.elapsed().as_nanos() as u64) / this_batch as u64;
        assert_eq!(
            outs.len(),
            this_batch,
            "decode_batch must return one outcome per syndrome ({})",
            decoder.label()
        );

        for (shot, out) in shots.iter().zip(&outs) {
            let (record, shot_unsolved) =
                crate::circuit_level::score_shot(dem, &shot.obs_flips, out, wall_ns);
            failures += usize::from(record.failed);
            unsolved += usize::from(shot_unsolved);
            records.push(record);
        }
    }

    RunReport {
        decoder: decoder.label(),
        precision: decoder.precision(),
        workload: workload.to_string(),
        shots: config.shots,
        failures,
        unsolved,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoders;
    use crate::run_code_capacity;
    use qldpc_circuit::{MemoryExperiment, NoiseModel};
    use qldpc_codes::bb;

    #[test]
    fn batched_single_thread_matches_sequential_statistics() {
        let code = bb::bb72();
        let config = CodeCapacityConfig {
            p: 0.04,
            shots: 60,
            seed: 11,
        };
        let seq = run_code_capacity(&code, &config, &decoders::plain_bp(30));
        let bat = run_code_capacity_batched(
            &code,
            &config,
            &decoders::plain_bp(30),
            &BatchConfig {
                threads: 1,
                batch_size: 7,
            },
        );
        assert_eq!(bat.shots, seq.shots);
        assert_eq!(bat.failures, seq.failures);
        assert_eq!(bat.unsolved, seq.unsolved);
        // Per-shot iteration accounting is identical; only wall_ns differs.
        for (b, s) in bat.records.iter().zip(&seq.records) {
            assert_eq!(b.serial_iterations, s.serial_iterations);
            assert_eq!(b.failed, s.failed);
        }
    }

    #[test]
    fn zero_shot_runs_return_an_empty_report() {
        let code = bb::bb72();
        let config = CodeCapacityConfig {
            p: 0.02,
            shots: 0,
            seed: 1,
        };
        let report = run_code_capacity_batched(
            &code,
            &config,
            &decoders::plain_bp(10),
            &BatchConfig {
                threads: 4,
                batch_size: 8,
            },
        );
        assert_eq!(report.shots, 0);
        assert_eq!(report.failures, 0);
        assert!(report.records.is_empty());
        assert_eq!(report.ler(), 0.0);
        // Same contract on the unbatched parallel runner.
        let par = crate::run_code_capacity_parallel(&code, &config, &decoders::plain_bp(10), 4);
        assert_eq!(par.shots, 0);
        assert!(par.records.is_empty());
    }

    #[test]
    fn batched_circuit_level_covers_all_shots() {
        let code = bb::bb72();
        let dem = MemoryExperiment::memory_z(&code, 2, &NoiseModel::uniform_depolarizing(1e-3))
            .detector_error_model();
        let report = run_circuit_level_batched(
            &dem,
            "bb72 r2",
            &CircuitLevelConfig { shots: 25, seed: 5 },
            &decoders::bp_osd(30, 10),
            &BatchConfig {
                threads: 2,
                batch_size: 4,
            },
        );
        assert_eq!(report.shots, 25);
        assert_eq!(report.records.len(), 25);
        assert!(report.workload.contains("[2T,batch=4]"));
        assert_eq!(report.unsolved, 0);
    }
}
