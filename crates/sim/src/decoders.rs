//! A uniform decoder interface over BP, BP-OSD and BP-SF.

use bpsf_core::{BpSfConfig, BpSfDecoder, ParallelBpSf};
use qldpc_bp::{BpConfig, MinSumDecoder, Schedule};
use qldpc_gf2::{BitVec, SparseBitMatrix};
use qldpc_osd::{BpOsdDecoder, OsdConfig};

/// The result of a single syndrome decode, with latency accounting.
#[derive(Debug, Clone)]
pub struct DecodeOutcome {
    /// Estimated error (meaningful only if `solved`).
    pub error_hat: BitVec,
    /// Whether the correction satisfies the syndrome.
    pub solved: bool,
    /// Cumulative BP iterations under serial execution (BP-OSD reports its
    /// BP stage only — the elimination cost shows up in wall time).
    pub serial_iterations: usize,
    /// BP iterations on the fully parallel critical path.
    pub critical_iterations: usize,
    /// Whether post-processing (OSD stage or BP-SF trials) ran.
    pub postprocessed: bool,
}

/// Anything that decodes syndromes against a fixed check matrix.
///
/// Implementations exist for plain min-sum BP, BP-OSD and BP-SF (serial
/// and parallel); the Monte Carlo runners drive them uniformly.
pub trait SyndromeDecoder {
    /// Decodes one syndrome.
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome;

    /// Short display name, e.g. `"BP1000-OSD10"`.
    fn label(&self) -> String;
}

/// Builds a decoder for a given check matrix and priors — the unit the
/// Monte Carlo runners consume so each basis (X/Z) gets its own instance.
pub type DecoderFactory =
    Box<dyn Fn(&SparseBitMatrix, &[f64]) -> Box<dyn SyndromeDecoder> + Send + Sync>;

// ---------------------------------------------------------------------
// Plain BP
// ---------------------------------------------------------------------

struct PlainBp {
    decoder: MinSumDecoder,
    label: String,
}

impl SyndromeDecoder for PlainBp {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        let r = self.decoder.decode(syndrome);
        DecodeOutcome {
            error_hat: r.error_hat,
            solved: r.converged,
            serial_iterations: r.iterations,
            critical_iterations: r.iterations,
            postprocessed: false,
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Factory for plain flooding min-sum BP with `max_iters` iterations
/// (the paper's `BP{max_iters}` baseline).
pub fn plain_bp(max_iters: usize) -> DecoderFactory {
    Box::new(move |h, priors| {
        let config = BpConfig {
            max_iters,
            ..BpConfig::default()
        };
        Box::new(PlainBp {
            decoder: MinSumDecoder::new(h, priors, config),
            label: format!("BP{max_iters}"),
        })
    })
}

/// Factory for plain layered min-sum BP (used for `[[288,12,18]]`,
/// Fig. 8).
pub fn layered_bp(max_iters: usize) -> DecoderFactory {
    Box::new(move |h, priors| {
        let config = BpConfig {
            max_iters,
            schedule: Schedule::Layered,
            ..BpConfig::default()
        };
        Box::new(PlainBp {
            decoder: MinSumDecoder::new(h, priors, config),
            label: format!("LayeredBP{max_iters}"),
        })
    })
}

// ---------------------------------------------------------------------
// BP-OSD
// ---------------------------------------------------------------------

struct BpOsd {
    decoder: BpOsdDecoder,
    label: String,
}

impl SyndromeDecoder for BpOsd {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        let r = self.decoder.decode(syndrome);
        DecodeOutcome {
            error_hat: r.error_hat,
            solved: r.solved,
            serial_iterations: r.bp_iterations,
            critical_iterations: r.bp_iterations,
            postprocessed: !r.bp_converged,
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Factory for the `BP{bp_iters}-OSD{order}` baseline (flooding BP).
pub fn bp_osd(bp_iters: usize, order: usize) -> DecoderFactory {
    Box::new(move |h, priors| {
        let bp = BpConfig {
            max_iters: bp_iters,
            ..BpConfig::default()
        };
        let osd = OsdConfig {
            order,
            ..OsdConfig::default()
        };
        Box::new(BpOsd {
            decoder: BpOsdDecoder::new(h, priors, bp, osd),
            label: format!("BP{bp_iters}-OSD{order}"),
        })
    })
}

/// Factory for the layered-schedule BP-OSD variant.
pub fn layered_bp_osd(bp_iters: usize, order: usize) -> DecoderFactory {
    Box::new(move |h, priors| {
        let bp = BpConfig {
            max_iters: bp_iters,
            schedule: Schedule::Layered,
            ..BpConfig::default()
        };
        let osd = OsdConfig {
            order,
            ..OsdConfig::default()
        };
        Box::new(BpOsd {
            decoder: BpOsdDecoder::new(h, priors, bp, osd),
            label: format!("LayeredBP{bp_iters}-OSD{order}"),
        })
    })
}

// ---------------------------------------------------------------------
// BP-SF
// ---------------------------------------------------------------------

struct BpSf {
    decoder: BpSfDecoder,
    label: String,
}

impl SyndromeDecoder for BpSf {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        let r = self.decoder.decode(syndrome);
        DecodeOutcome {
            error_hat: r.error_hat,
            solved: r.success,
            serial_iterations: r.serial_iterations,
            critical_iterations: r.critical_path_iterations,
            postprocessed: !r.initial_converged,
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Factory for the serial BP-SF decoder with an explicit configuration.
pub fn bp_sf(config: BpSfConfig) -> DecoderFactory {
    Box::new(move |h, priors| {
        let label = match config.sampling {
            bpsf_core::TrialSampling::Exhaustive => format!(
                "BP-SF(BP{},w={},|Φ|={})",
                config.initial_bp.max_iters, config.max_flip_weight, config.candidates
            ),
            bpsf_core::TrialSampling::Sampled { per_weight } => format!(
                "BP-SF(BP{},w={},|Φ|={},ns={})",
                config.initial_bp.max_iters,
                config.max_flip_weight,
                config.candidates,
                per_weight
            ),
        };
        Box::new(BpSf {
            decoder: BpSfDecoder::new(h, priors, config),
            label,
        })
    })
}

/// Factory for the layered-schedule BP-SF variant (Fig. 8).
pub fn layered_bp_sf(mut config: BpSfConfig) -> DecoderFactory {
    config.initial_bp.schedule = Schedule::Layered;
    Box::new(move |h, priors| {
        Box::new(BpSf {
            decoder: BpSfDecoder::new(h, priors, config),
            label: format!(
                "Layered-BP-SF(BP{},w={},|Φ|={})",
                config.initial_bp.max_iters, config.max_flip_weight, config.candidates
            ),
        })
    })
}

// ---------------------------------------------------------------------
// Parallel BP-SF
// ---------------------------------------------------------------------

struct ParallelBpSfAdapter {
    decoder: ParallelBpSf,
    label: String,
}

impl SyndromeDecoder for ParallelBpSfAdapter {
    fn decode_syndrome(&mut self, syndrome: &BitVec) -> DecodeOutcome {
        let (r, _stats) = self.decoder.decode(syndrome);
        DecodeOutcome {
            error_hat: r.error_hat,
            solved: r.success,
            serial_iterations: r.serial_iterations,
            critical_iterations: r.critical_path_iterations,
            postprocessed: !r.initial_converged,
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Factory for the worker-pool parallel BP-SF decoder
/// (the paper's "BP-SF (CPU, P={workers})").
pub fn parallel_bp_sf(config: BpSfConfig, workers: usize) -> DecoderFactory {
    Box::new(move |h, priors| {
        Box::new(ParallelBpSfAdapter {
            decoder: ParallelBpSf::new(h, priors, config, workers),
            label: format!("BP-SF(P={workers})"),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_codes::bb;

    #[test]
    fn factories_produce_labeled_decoders() {
        let code = bb::bb72();
        let hz = code.hz();
        let priors = vec![0.01; hz.cols()];
        let labels = [
            (plain_bp(100)(hz, &priors).label(), "BP100"),
            (bp_osd(1000, 10)(hz, &priors).label(), "BP1000-OSD10"),
            (layered_bp(50)(hz, &priors).label(), "LayeredBP50"),
        ];
        for (got, want) in labels {
            assert_eq!(got, want);
        }
        let sf = bp_sf(BpSfConfig::code_capacity(50, 8, 1))(hz, &priors);
        assert!(sf.label().contains("BP-SF"));
    }

    #[test]
    fn all_decoders_solve_a_zero_syndrome() {
        let code = bb::bb72();
        let hz = code.hz();
        let priors = vec![0.01; hz.cols()];
        let zero = BitVec::zeros(hz.rows());
        let factories: Vec<DecoderFactory> = vec![
            plain_bp(50),
            layered_bp(50),
            bp_osd(50, 10),
            bp_sf(BpSfConfig::code_capacity(50, 4, 1)),
            parallel_bp_sf(BpSfConfig::code_capacity(50, 4, 1), 2),
        ];
        for f in factories {
            let mut d = f(hz, &priors);
            let out = d.decode_syndrome(&zero);
            assert!(out.solved, "{} failed zero syndrome", d.label());
            assert!(out.error_hat.is_zero());
        }
    }
}
