//! Factory functions building the paper's decoder configurations.
//!
//! The decoder *interface* ([`SyndromeDecoder`], [`DecodeOutcome`],
//! [`DecoderFactory`]) lives in `qldpc-decoder-api` and is implemented
//! natively by each decoder crate — `MinSumDecoder`, `BpOsdDecoder`,
//! `BpSfDecoder` and `ParallelBpSf` are the trait objects themselves, no
//! sim-local adapters. This module only packages the paper's named
//! configurations (`BP1000`, `BP1000-OSD10`, `BP-SF(…)`) as
//! [`DecoderFactory`] closures for the Monte Carlo runners, which build
//! one instance per basis (X/Z) and per worker thread.

use bpsf_core::{BpSfConfig, BpSfDecoder, ParallelBpSf};
use qldpc_bp::{
    BpConfig, BpWindowDecoder, BpWindowDecoderF32, MinSumDecoder, MinSumDecoderF32, Schedule,
};
use qldpc_osd::{BpOsdDecoder, OsdConfig};

pub use qldpc_decoder_api::{
    DecodeOutcome, DecoderFactory, Precision, SyndromeDecoder, WindowDecoderFactory,
};

/// Builds a BP factory for an explicit config at the requested message
/// precision — the one place the `Precision` runtime value is turned
/// into a decoder *type*, shared by every BP factory below.
fn bp_factory(config: BpConfig, precision: Precision) -> DecoderFactory {
    match precision {
        Precision::F64 => {
            Box::new(move |h, priors| Box::new(MinSumDecoder::new(h, priors, config)))
        }
        Precision::F32 => {
            Box::new(move |h, priors| Box::new(MinSumDecoderF32::new(h, priors, config)))
        }
    }
}

/// Factory for plain flooding min-sum BP with `max_iters` iterations
/// (the paper's `BP{max_iters}` baseline).
pub fn plain_bp(max_iters: usize) -> DecoderFactory {
    plain_bp_at(max_iters, Precision::F64)
}

/// [`plain_bp`] at an explicit message precision; `Precision::F32` runs
/// the half-width fast path (labels gain an `@f32` suffix).
pub fn plain_bp_at(max_iters: usize, precision: Precision) -> DecoderFactory {
    bp_factory(
        BpConfig {
            max_iters,
            ..BpConfig::default()
        },
        precision,
    )
}

/// Factory for plain layered min-sum BP (used for `[[288,12,18]]`,
/// Fig. 8).
pub fn layered_bp(max_iters: usize) -> DecoderFactory {
    layered_bp_at(max_iters, Precision::F64)
}

/// [`layered_bp`] at an explicit message precision.
pub fn layered_bp_at(max_iters: usize, precision: Precision) -> DecoderFactory {
    bp_factory(
        BpConfig {
            max_iters,
            schedule: Schedule::Layered,
            ..BpConfig::default()
        },
        precision,
    )
}

/// Factory for the `BP{bp_iters}-OSD{order}` baseline (flooding BP).
pub fn bp_osd(bp_iters: usize, order: usize) -> DecoderFactory {
    Box::new(move |h, priors| {
        let bp = BpConfig {
            max_iters: bp_iters,
            ..BpConfig::default()
        };
        let osd = OsdConfig {
            order,
            ..OsdConfig::default()
        };
        Box::new(BpOsdDecoder::new(h, priors, bp, osd))
    })
}

/// Factory for the layered-schedule BP-OSD variant.
pub fn layered_bp_osd(bp_iters: usize, order: usize) -> DecoderFactory {
    Box::new(move |h, priors| {
        let bp = BpConfig {
            max_iters: bp_iters,
            schedule: Schedule::Layered,
            ..BpConfig::default()
        };
        let osd = OsdConfig {
            order,
            ..OsdConfig::default()
        };
        Box::new(BpOsdDecoder::new(h, priors, bp, osd))
    })
}

/// Factory for the sliding-window min-sum BP decoder (flooding schedule,
/// `max_iters` per window) used by the streaming runner and the decode
/// service's streaming codes.
pub fn window_bp(max_iters: usize) -> WindowDecoderFactory {
    window_bp_at(max_iters, Precision::F64)
}

/// [`window_bp`] at an explicit message precision; `Precision::F32` runs
/// the half-width window engines.
pub fn window_bp_at(max_iters: usize, precision: Precision) -> WindowDecoderFactory {
    let config = BpConfig {
        max_iters,
        ..BpConfig::default()
    };
    match precision {
        Precision::F64 => Box::new(move |plan| Box::new(BpWindowDecoder::new(plan, config))),
        Precision::F32 => Box::new(move |plan| Box::new(BpWindowDecoderF32::new(plan, config))),
    }
}

/// Factory for the serial BP-SF decoder with an explicit configuration.
pub fn bp_sf(config: BpSfConfig) -> DecoderFactory {
    Box::new(move |h, priors| Box::new(BpSfDecoder::new(h, priors, config)))
}

/// Factory for the layered-schedule BP-SF variant (Fig. 8).
pub fn layered_bp_sf(mut config: BpSfConfig) -> DecoderFactory {
    config.initial_bp.schedule = Schedule::Layered;
    Box::new(move |h, priors| Box::new(BpSfDecoder::new(h, priors, config)))
}

/// Factory for the worker-pool parallel BP-SF decoder
/// (the paper's "BP-SF (CPU, P={workers})").
pub fn parallel_bp_sf(config: BpSfConfig, workers: usize) -> DecoderFactory {
    Box::new(move |h, priors| Box::new(ParallelBpSf::new(h, priors, config, workers)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qldpc_codes::bb;
    use qldpc_gf2::BitVec;

    #[test]
    fn factories_produce_labeled_decoders() {
        let code = bb::bb72();
        let hz = code.hz();
        let priors = vec![0.01; hz.cols()];
        let labels = [
            (plain_bp(100)(hz, &priors).label(), "BP100"),
            (bp_osd(1000, 10)(hz, &priors).label(), "BP1000-OSD10"),
            (layered_bp(50)(hz, &priors).label(), "LayeredBP50"),
            (
                layered_bp_osd(50, 10)(hz, &priors).label(),
                "LayeredBP50-OSD10",
            ),
        ];
        for (got, want) in labels {
            assert_eq!(got, want);
        }
        let sf = bp_sf(BpSfConfig::code_capacity(50, 8, 1))(hz, &priors);
        let f32_bp = plain_bp_at(100, Precision::F32)(hz, &priors);
        assert_eq!(f32_bp.label(), "BP100@f32");
        assert_eq!(f32_bp.precision(), Precision::F32);
        let f32_layered = layered_bp_at(50, Precision::F32)(hz, &priors);
        assert_eq!(f32_layered.label(), "LayeredBP50@f32");
        // The default-precision factories still build f64 decoders.
        assert_eq!(plain_bp(100)(hz, &priors).precision(), Precision::F64);
        assert!(sf.label().contains("BP-SF"));
        // Families flow through the factories for report grouping.
        use qldpc_decoder_api::DecoderFamily;
        assert_eq!(plain_bp(100)(hz, &priors).family(), DecoderFamily::Bp);
        assert_eq!(f32_bp.family(), DecoderFamily::Bp);
        assert_eq!(bp_osd(50, 10)(hz, &priors).family(), DecoderFamily::BpOsd);
        assert_eq!(sf.family(), DecoderFamily::BpSf);
        let sf_desc = sf.descriptor();
        assert_eq!(sf_desc.label, sf.label());
        assert_eq!(sf_desc.family, DecoderFamily::BpSf);
        let lsf = layered_bp_sf(BpSfConfig::code_capacity(50, 8, 1))(hz, &priors);
        assert!(lsf.label().starts_with("Layered-BP-SF"));
        let psf = parallel_bp_sf(BpSfConfig::code_capacity(50, 4, 1), 2)(hz, &priors);
        assert_eq!(psf.label(), "BP-SF(P=2)");
    }

    #[test]
    fn all_decoders_solve_a_zero_syndrome() {
        let code = bb::bb72();
        let hz = code.hz();
        let priors = vec![0.01; hz.cols()];
        let zero = BitVec::zeros(hz.rows());
        let factories: Vec<DecoderFactory> = vec![
            plain_bp(50),
            layered_bp(50),
            plain_bp_at(50, Precision::F32),
            layered_bp_at(50, Precision::F32),
            bp_osd(50, 10),
            bp_sf(BpSfConfig::code_capacity(50, 4, 1)),
            parallel_bp_sf(BpSfConfig::code_capacity(50, 4, 1), 2),
        ];
        for f in factories {
            let mut d = f(hz, &priors);
            let out = d.decode_syndrome(&zero);
            assert!(out.solved, "{} failed zero syndrome", d.label());
            assert!(out.error_hat.is_zero());
        }
    }

    #[test]
    fn batch_defaults_to_the_sequential_loop() {
        let code = bb::bb72();
        let hz = code.hz();
        let n = hz.cols();
        let priors = vec![0.02; n];
        let syndromes: Vec<BitVec> = (0..6)
            .map(|i| hz.mul_vec(&BitVec::from_indices(n, &[i, i + 9])))
            .collect();
        let mut batched = bp_osd(40, 10)(hz, &priors);
        let mut looped = bp_osd(40, 10)(hz, &priors);
        let b = batched.decode_batch(&syndromes);
        let l: Vec<DecodeOutcome> = syndromes
            .iter()
            .map(|s| looped.decode_syndrome(s))
            .collect();
        assert_eq!(b.len(), l.len());
        for (x, y) in b.iter().zip(&l) {
            assert_eq!(x.solved, y.solved);
            assert_eq!(x.error_hat, y.error_hat);
            assert_eq!(x.serial_iterations, y.serial_iterations);
        }
    }
}
