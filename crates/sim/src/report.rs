//! Per-run reports and shot records.

use bpsf_core::stats::LatencyStats;
use qldpc_decoder_api::Precision;
use std::fmt;

/// One decoded shot's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShotRecord {
    /// Wall-clock decode time in nanoseconds.
    pub wall_ns: u64,
    /// Cumulative BP iterations under serial execution.
    pub serial_iterations: usize,
    /// BP iterations on the fully parallel critical path.
    pub critical_iterations: usize,
    /// Whether post-processing ran (initial BP failed).
    pub postprocessed: bool,
    /// Whether the shot ended in a logical failure (or was unsolved).
    pub failed: bool,
}

/// Aggregated result of a Monte Carlo run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Decoder label.
    pub decoder: String,
    /// Message precision of the decoder that produced this run, as
    /// reported by `SyndromeDecoder::precision` — recorded so precision
    /// sweeps stay attributable even where labels are post-processed.
    pub precision: Precision,
    /// Workload label (code, noise model, parameters).
    pub workload: String,
    /// Shots simulated.
    pub shots: usize,
    /// Logical failures (including unsolved shots).
    pub failures: usize,
    /// Shots the decoder could not solve at all.
    pub unsolved: usize,
    /// Per-shot records, in simulation order.
    pub records: Vec<ShotRecord>,
}

impl RunReport {
    /// Logical error rate.
    pub fn ler(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }

    /// Wilson score interval on the LER at the given confidence level
    /// (e.g. `0.95`) — the interval the campaign engine's adaptive
    /// stopping rule watches. See `bpsf_core::stats::wilson_interval`
    /// for the edge-case behavior (zero shots, zero/all failures).
    pub fn ler_ci(&self, confidence: f64) -> bpsf_core::stats::BinomialCi {
        bpsf_core::stats::wilson_interval(self.failures, self.shots, confidence)
    }

    /// Standard error of the LER estimate (binomial).
    pub fn ler_std_err(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.ler();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Logical error rate per round (paper Eq. 11).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn ler_per_round(&self, rounds: usize) -> f64 {
        crate::ler_per_round(self.ler(), rounds)
    }

    /// Fraction of shots needing post-processing.
    pub fn postprocessing_rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.records.iter().filter(|r| r.postprocessed).count() as f64 / self.shots as f64
    }

    /// Wall-clock statistics in milliseconds over all shots.
    pub fn wall_stats_ms(&self) -> LatencyStats {
        LatencyStats::from_samples(
            self.records
                .iter()
                .map(|r| r.wall_ns as f64 / 1.0e6)
                .collect(),
        )
    }

    /// Wall-clock statistics in milliseconds over post-processed shots only
    /// (the paper's dashed "post-processing stage" series in Fig. 13).
    pub fn postprocessed_wall_stats_ms(&self) -> LatencyStats {
        LatencyStats::from_samples(
            self.records
                .iter()
                .filter(|r| r.postprocessed)
                .map(|r| r.wall_ns as f64 / 1.0e6)
                .collect(),
        )
    }

    /// Total BP iterations under serial execution, summed over all
    /// shots — the campaign log's per-chunk convergence-effort
    /// aggregate (divide by shots for the mean the report prints).
    pub fn total_serial_iterations(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.serial_iterations as u64)
            .sum()
    }

    /// Serial-iteration statistics (Fig. 12's y-axis).
    pub fn serial_iteration_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(
            self.records
                .iter()
                .map(|r| r.serial_iterations as f64)
                .collect(),
        )
    }

    /// Critical-path iteration statistics.
    pub fn critical_iteration_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(
            self.records
                .iter()
                .map(|r| r.critical_iterations as f64)
                .collect(),
        )
    }

    /// Serializes the header + one row of the aggregate metrics as TSV.
    pub fn tsv_row(&self, rounds: Option<usize>) -> String {
        let wall = self.wall_stats_ms();
        let ler = self.ler();
        let lpr = rounds.map(|r| crate::ler_per_round(ler, r));
        format!(
            "{}\t{}\t{}\t{}\t{}\t{:.3e}\t{}\t{:.4}\t{:.4}\t{:.4}",
            self.decoder,
            self.precision,
            self.workload,
            self.shots,
            self.failures,
            ler,
            lpr.map_or_else(|| "-".to_string(), |v| format!("{v:.3e}")),
            wall.mean,
            wall.max,
            self.postprocessing_rate(),
        )
    }

    /// TSV header matching [`Self::tsv_row`].
    pub fn tsv_header() -> &'static str {
        "decoder\tprecision\tworkload\tshots\tfailures\tler\tler_per_round\tavg_ms\tmax_ms\tpostproc_rate"
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let wall = self.wall_stats_ms();
        write!(
            f,
            "{:<40} {:>8} shots  LER {:.3e} (±{:.1e})  avg {:.3} ms  max {:.3} ms  postproc {:.1}%",
            format!("{} on {}", self.decoder, self.workload),
            self.shots,
            self.ler(),
            self.ler_std_err(),
            wall.mean,
            wall.max,
            100.0 * self.postprocessing_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(failed: bool, post: bool, wall_ms: f64) -> ShotRecord {
        ShotRecord {
            wall_ns: (wall_ms * 1e6) as u64,
            serial_iterations: 10,
            critical_iterations: 10,
            postprocessed: post,
            failed,
        }
    }

    fn report() -> RunReport {
        RunReport {
            decoder: "BP-SF".into(),
            precision: Precision::F64,
            workload: "test".into(),
            shots: 4,
            failures: 1,
            unsolved: 0,
            records: vec![
                record(false, false, 1.0),
                record(false, true, 5.0),
                record(true, true, 9.0),
                record(false, false, 1.0),
            ],
        }
    }

    #[test]
    fn ler_and_rates() {
        let r = report();
        assert!((r.ler() - 0.25).abs() < 1e-12);
        assert!((r.postprocessing_rate() - 0.5).abs() < 1e-12);
        assert!(r.ler_std_err() > 0.0);
        let ci = r.ler_ci(0.95);
        assert!(ci.contains(r.ler()));
        assert!(ci.lo > 0.0 && ci.hi < 1.0);
    }

    #[test]
    fn per_round_conversion() {
        let r = report();
        let lpr = r.ler_per_round(10);
        assert!(lpr < r.ler());
        assert!(lpr > 0.0);
    }

    #[test]
    fn wall_stats() {
        let r = report();
        let s = r.wall_stats_ms();
        assert!((s.mean - 4.0).abs() < 1e-9);
        assert!((s.max - 9.0).abs() < 1e-9);
        let pp = r.postprocessed_wall_stats_ms();
        assert!((pp.mean - 7.0).abs() < 1e-9);
    }

    #[test]
    fn tsv_row_shape() {
        let r = report();
        assert_eq!(
            RunReport::tsv_header().split('\t').count(),
            r.tsv_row(Some(3)).split('\t').count()
        );
    }
}
