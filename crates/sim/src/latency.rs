//! Analytic hardware latency models.
//!
//! The paper's GPU numbers are an estimate assembled from iteration counts
//! and a per-iteration latency (CUDA-Q lacks oscillation tracking), and
//! its §VI discussion derives an FPGA/ASIC worst case from a 20 ns BP
//! iteration. This module reproduces both: it converts per-shot iteration
//! records into estimated decode times under a given hardware profile.

use crate::report::{RunReport, ShotRecord};
use bpsf_core::stats::LatencyStats;

/// A hardware latency profile for BP decoding.
///
/// # Examples
///
/// ```
/// use qldpc_sim::HardwareLatencyModel;
///
/// let fpga = HardwareLatencyModel::fpga();
/// // 200 iterations at 20 ns ≈ the paper's 4 µs worst case.
/// assert!((fpga.time_us(200) - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareLatencyModel {
    /// Latency of one BP iteration in nanoseconds.
    pub iteration_ns: f64,
    /// Fixed per-decode overhead in nanoseconds (kernel launch, I/O —
    /// the paper observed ≈0.1 ms minimum for the CUDA-Q wrapper).
    pub overhead_ns: f64,
    /// Whether speculative trials run fully in parallel (use the critical
    /// path) or sequentially (use the serial iteration count). The paper's
    /// "GPU_Est" decodes trials one-by-one — `parallel_trials = false`;
    /// its FPGA projection assumes full parallelism.
    pub parallel_trials: bool,
}

impl HardwareLatencyModel {
    /// The paper's pessimistic GPU estimate: ≈25 µs per BP iteration
    /// (calibrated so BP1000-OSD10-like workloads land in the observed
    /// 7 ms average), 0.1 ms fixed wrapper overhead, serial trials.
    pub fn gpu_estimate() -> Self {
        Self {
            iteration_ns: 25_000.0,
            overhead_ns: 100_000.0,
            parallel_trials: false,
        }
    }

    /// A batched GPU that decodes all trials concurrently and returns on
    /// the first success (the improvement the paper proposes).
    pub fn gpu_batched() -> Self {
        Self {
            iteration_ns: 25_000.0,
            overhead_ns: 100_000.0,
            parallel_trials: true,
        }
    }

    /// The paper's FPGA/ASIC projection: 20 ns per iteration
    /// (Valls et al.), no overhead, fully parallel trials.
    pub fn fpga() -> Self {
        Self {
            iteration_ns: 20.0,
            overhead_ns: 0.0,
            parallel_trials: true,
        }
    }

    /// Estimated time in microseconds for a given iteration count.
    pub fn time_us(&self, iterations: usize) -> f64 {
        (self.overhead_ns + self.iteration_ns * iterations as f64) / 1_000.0
    }

    /// Estimated decode time for one shot record, in milliseconds.
    pub fn shot_time_ms(&self, record: &ShotRecord) -> f64 {
        let iters = if self.parallel_trials {
            record.critical_iterations
        } else {
            record.serial_iterations
        };
        (self.overhead_ns + self.iteration_ns * iters as f64) / 1.0e6
    }

    /// Estimated latency statistics (ms) over a whole run.
    pub fn run_stats_ms(&self, report: &RunReport) -> LatencyStats {
        LatencyStats::from_samples(
            report
                .records
                .iter()
                .map(|r| self.shot_time_ms(r))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(serial: usize, critical: usize) -> ShotRecord {
        ShotRecord {
            wall_ns: 0,
            serial_iterations: serial,
            critical_iterations: critical,
            postprocessed: serial != critical,
            failed: false,
        }
    }

    #[test]
    fn fpga_worst_case_matches_paper() {
        // Paper §VI: 100 initial + 100 parallel trial iterations at 20 ns
        // ⇒ ≈4 µs fully parallel worst case.
        let m = HardwareLatencyModel::fpga();
        assert!((m.time_us(200) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_model_uses_critical_path() {
        let par = HardwareLatencyModel {
            iteration_ns: 1000.0,
            overhead_ns: 0.0,
            parallel_trials: true,
        };
        let ser = HardwareLatencyModel {
            parallel_trials: false,
            ..par
        };
        let r = record(3100, 200);
        assert!(par.shot_time_ms(&r) < ser.shot_time_ms(&r));
        assert!((ser.shot_time_ms(&r) - 3.1).abs() < 1e-9);
        assert!((par.shot_time_ms(&r) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn overhead_floors_the_estimate() {
        let m = HardwareLatencyModel::gpu_estimate();
        let r = record(0, 0);
        assert!((m.shot_time_ms(&r) - 0.1).abs() < 1e-9);
    }
}
