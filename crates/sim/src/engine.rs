//! The shared thread fan-out engine behind every parallel Monte Carlo
//! runner.
//!
//! One policy, used by [`crate::parallel_runner`] and [`crate::batch`]
//! alike:
//!
//! * shots are split as evenly as possible across `threads` (earlier
//!   threads take the remainder, and empty chunks are dropped);
//! * thread `t` runs with the *deterministic* seed `base_seed + t`, so a
//!   T-thread run is exactly the union of T seeded sequential runs —
//!   reproducible regardless of scheduling whenever the decoder itself is
//!   deterministic (the worker-pool `ParallelBpSf` is not: its winning
//!   trial depends on its own workers' scheduling);
//! * every thread builds its own decoder instances from the shared
//!   [`crate::decoders::DecoderFactory`] (decoders are stateful and not
//!   `Sync`; factories are);
//! * per-thread reports are merged in thread order, so `records` is a
//!   deterministic concatenation.

use crate::report::RunReport;

/// Splits `total` shots into per-thread chunk sizes (empty chunks
/// dropped).
pub(crate) fn split_shots(total: usize, threads: usize) -> Vec<usize> {
    let base = total / threads;
    let extra = total % threads;
    (0..threads)
        .map(|t| base + usize::from(t < extra))
        .filter(|&s| s > 0)
        .collect()
}

/// Runs `job(thread_idx, chunk_shots)` on its own thread for every chunk
/// of `total` shots and returns the reports in thread order.
///
/// # Panics
///
/// Panics if `threads == 0`, or if any worker panics.
pub(crate) fn fan_out<J>(total: usize, threads: usize, job: J) -> Vec<RunReport>
where
    J: Fn(usize, usize) -> RunReport + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let mut chunks = split_shots(total, threads);
    if chunks.is_empty() {
        // Zero-shot runs still produce one (empty) report, matching the
        // sequential runners instead of panicking in the merge.
        chunks.push(0);
    }
    let job = &job;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(t, &shots)| scope.spawn(move |_| job(t, shots)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked")
}

/// Merges per-thread reports (thread order), tagging the workload with
/// `tag` (e.g. `"[4T]"` or `"[4T,batch=32]"`).
///
/// # Panics
///
/// Panics on an empty report list.
pub(crate) fn merge_reports(reports: Vec<RunReport>, tag: &str) -> RunReport {
    let mut iter = reports.into_iter();
    let mut merged = iter.next().expect("at least one report");
    merged.workload = format!("{} {tag}", merged.workload);
    for r in iter {
        merged.shots += r.shots;
        merged.failures += r.failures;
        merged.unsolved += r.unsolved;
        merged.records.extend(r.records);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ShotRecord;

    #[test]
    fn shot_splitting_is_exact() {
        assert_eq!(split_shots(10, 3), vec![4, 3, 3]);
        assert_eq!(split_shots(2, 4), vec![1, 1]);
        assert_eq!(split_shots(9, 1), vec![9]);
    }

    fn report(workload: &str, shots: usize, failures: usize) -> RunReport {
        RunReport {
            decoder: "D".into(),
            precision: qldpc_decoder_api::Precision::F64,
            workload: workload.into(),
            shots,
            failures,
            unsolved: 0,
            records: vec![
                ShotRecord {
                    wall_ns: 1,
                    serial_iterations: 1,
                    critical_iterations: 1,
                    postprocessed: false,
                    failed: false,
                };
                shots
            ],
        }
    }

    #[test]
    fn fan_out_runs_every_chunk_once() {
        let reports = fan_out(10, 3, |t, shots| report(&format!("t{t}"), shots, t));
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports.iter().map(|r| r.shots).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        // Thread order is preserved.
        assert_eq!(reports[0].workload, "t0");
        assert_eq!(reports[2].workload, "t2");
    }

    #[test]
    fn merging_sums_counts_and_concatenates_records() {
        let merged = merge_reports(vec![report("w", 4, 1), report("w", 3, 2)], "[2T]");
        assert_eq!(merged.shots, 7);
        assert_eq!(merged.failures, 3);
        assert_eq!(merged.records.len(), 7);
        assert_eq!(merged.workload, "w [2T]");
    }
}
