//! Property tests: `decode_batch` must be observationally identical to a
//! sequential `decode_syndrome` loop (the contract documented on
//! `qldpc_decoder_api::SyndromeDecoder::decode_batch`), exercised here
//! through the paper's decoders on a BB code.

use proptest::prelude::*;
use qldpc_gf2::BitVec;
use qldpc_sim::decoders::{self, DecodeOutcome, DecoderFactory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random error syndromes on bb72's Z-check matrix from a seeded stream.
fn syndromes_for_seed(seed: u64, count: usize, p: f64) -> Vec<BitVec> {
    let code = qldpc_codes::bb::bb72();
    let hz = code.hz();
    let n = hz.cols();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut e = BitVec::zeros(n);
            for i in 0..n {
                if rng.random_bool(p) {
                    e.set(i, true);
                }
            }
            hz.mul_vec(&e)
        })
        .collect()
}

fn assert_batch_equals_loop(factory: &DecoderFactory, syndromes: &[BitVec]) {
    let code = qldpc_codes::bb::bb72();
    let hz = code.hz();
    let priors = vec![0.02; hz.cols()];
    // Two independent instances: decoders are stateful, so batching must
    // thread state through in exactly the same order as the loop.
    let mut batched = factory(hz, &priors);
    let mut looped = factory(hz, &priors);
    let b = batched.decode_batch(syndromes);
    let l: Vec<DecodeOutcome> = syndromes
        .iter()
        .map(|s| looped.decode_syndrome(s))
        .collect();
    assert_eq!(b.len(), l.len());
    for (i, (x, y)) in b.iter().zip(&l).enumerate() {
        assert_eq!(x.solved, y.solved, "solved diverged at shot {i}");
        assert_eq!(x.error_hat, y.error_hat, "error_hat diverged at shot {i}");
        assert_eq!(x.serial_iterations, y.serial_iterations, "shot {i}");
        assert_eq!(x.critical_iterations, y.critical_iterations, "shot {i}");
        assert_eq!(x.postprocessed, y.postprocessed, "shot {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Plain BP: batch ≡ loop on random syndrome streams.
    #[test]
    fn plain_bp_batch_equals_loop(seed in 0u64..10_000, count in 1usize..12) {
        let syndromes = syndromes_for_seed(seed, count, 0.03);
        assert_batch_equals_loop(&decoders::plain_bp(30), &syndromes);
    }

    /// BP-OSD: batch ≡ loop, including post-processed shots.
    #[test]
    fn bp_osd_batch_equals_loop(seed in 0u64..10_000, count in 1usize..10) {
        let syndromes = syndromes_for_seed(seed, count, 0.05);
        assert_batch_equals_loop(&decoders::bp_osd(25, 10), &syndromes);
    }

    /// BP-SF (exhaustive trials): batch ≡ loop, covering the interleaved
    /// initial stage + serial post-processing path.
    #[test]
    fn bp_sf_batch_equals_loop(seed in 0u64..10_000, count in 1usize..8) {
        let syndromes = syndromes_for_seed(seed, count, 0.06);
        let config = bpsf_core::BpSfConfig::code_capacity(20, 6, 2);
        assert_batch_equals_loop(&decoders::bp_sf(config), &syndromes);
    }
}

/// The lane-isolation half of the `decode_batch` contract (documented on
/// `SyndromeDecoder::decode_batch`): per-call decoders must not leak
/// state across batch lanes. The same syndrome decoded at lane 0 and at
/// lane B−1 of one batch call must produce identical outcomes, for every
/// deterministic in-tree decoder.
#[test]
fn no_state_leaks_across_batch_lanes() {
    let code = qldpc_codes::bb::bb72();
    let hz = code.hz();
    let n = hz.cols();
    let priors = vec![0.02; n];
    let probe = hz.mul_vec(&BitVec::from_indices(n, &[5, 31, 60]));
    // Interior lanes mix instantly-convergent, hard, and heavy shots so
    // lanes converge at different iterations.
    let mut syndromes = vec![probe.clone(), BitVec::zeros(hz.rows())];
    syndromes.extend(syndromes_for_seed(77, 5, 0.08));
    syndromes.push(probe.clone());

    let factories: Vec<(&str, DecoderFactory)> = vec![
        ("plain_bp", decoders::plain_bp(30)),
        ("layered_bp", decoders::layered_bp(30)),
        ("bp_osd", decoders::bp_osd(25, 10)),
        (
            "bp_sf",
            decoders::bp_sf(bpsf_core::BpSfConfig::code_capacity(20, 6, 2)),
        ),
    ];
    for (name, factory) in factories {
        let mut dec = factory(hz, &priors);
        let outs = dec.decode_batch(&syndromes);
        let (first, last) = (&outs[0], &outs[outs.len() - 1]);
        assert_eq!(first.solved, last.solved, "{name}: solved leaked");
        assert_eq!(first.error_hat, last.error_hat, "{name}: error_hat leaked");
        assert_eq!(
            first.serial_iterations, last.serial_iterations,
            "{name}: serial iterations leaked"
        );
        assert_eq!(
            first.critical_iterations, last.critical_iterations,
            "{name}: critical iterations leaked"
        );
        assert_eq!(
            first.postprocessed, last.postprocessed,
            "{name}: postprocessed flag leaked"
        );
    }
}
