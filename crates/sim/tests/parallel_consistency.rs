//! Fixed-seed regression tests for the thread fan-out engine: a parallel
//! run must aggregate exactly the shot/failure totals of the per-thread
//! sequential runs its seeding policy (`seed + t`) implies.

use qldpc_sim::{
    decoders, run_code_capacity, run_code_capacity_batched, run_code_capacity_parallel,
    BatchConfig, CodeCapacityConfig,
};

const CONFIG: CodeCapacityConfig = CodeCapacityConfig {
    p: 0.05,
    shots: 48,
    seed: 1234,
};

/// The per-thread sequential runs the engine's seeding policy implies.
fn expected_chunks(threads: usize) -> Vec<qldpc_sim::RunReport> {
    let code = qldpc_codes::bb::bb72();
    let base = CONFIG.shots / threads;
    let extra = CONFIG.shots % threads;
    (0..threads)
        .map(|t| {
            run_code_capacity(
                &code,
                &CodeCapacityConfig {
                    p: CONFIG.p,
                    shots: base + usize::from(t < extra),
                    seed: CONFIG.seed + t as u64,
                },
                &decoders::plain_bp(30),
            )
        })
        .collect()
}

#[test]
fn parallel_runner_aggregates_per_thread_sequential_totals() {
    let code = qldpc_codes::bb::bb72();
    let par = run_code_capacity_parallel(&code, &CONFIG, &decoders::plain_bp(30), 3);
    let chunks = expected_chunks(3);

    assert_eq!(par.shots, CONFIG.shots);
    assert_eq!(par.records.len(), CONFIG.shots);
    assert_eq!(
        par.failures,
        chunks.iter().map(|r| r.failures).sum::<usize>()
    );
    assert_eq!(
        par.unsolved,
        chunks.iter().map(|r| r.unsolved).sum::<usize>()
    );
    // Records are the thread-ordered concatenation of the chunk records,
    // shot for shot (wall times aside).
    let flat: Vec<_> = chunks.iter().flat_map(|r| r.records.iter()).collect();
    for (i, (p, s)) in par.records.iter().zip(flat).enumerate() {
        assert_eq!(p.failed, s.failed, "shot {i}");
        assert_eq!(p.serial_iterations, s.serial_iterations, "shot {i}");
        assert_eq!(p.postprocessed, s.postprocessed, "shot {i}");
    }
    assert!(par.workload.contains("[3T]"));
}

#[test]
fn batched_runner_matches_parallel_runner_statistics() {
    let code = qldpc_codes::bb::bb72();
    let par = run_code_capacity_parallel(&code, &CONFIG, &decoders::plain_bp(30), 2);
    let bat = run_code_capacity_batched(
        &code,
        &CONFIG,
        &decoders::plain_bp(30),
        &BatchConfig {
            threads: 2,
            batch_size: 5,
        },
    );
    // Same seeding policy + batch/loop equivalence ⇒ identical statistics.
    assert_eq!(bat.shots, par.shots);
    assert_eq!(bat.failures, par.failures);
    assert_eq!(bat.unsolved, par.unsolved);
    for (b, p) in bat.records.iter().zip(&par.records) {
        assert_eq!(b.failed, p.failed);
        assert_eq!(b.serial_iterations, p.serial_iterations);
    }
}

#[test]
fn single_thread_parallel_run_is_exactly_the_sequential_run() {
    let code = qldpc_codes::bb::bb72();
    let seq = run_code_capacity(&code, &CONFIG, &decoders::plain_bp(30));
    let par = run_code_capacity_parallel(&code, &CONFIG, &decoders::plain_bp(30), 1);
    assert_eq!(par.failures, seq.failures);
    assert_eq!(par.unsolved, seq.unsolved);
    assert_eq!(par.records.len(), seq.records.len());
    for (p, s) in par.records.iter().zip(&seq.records) {
        assert_eq!(p.failed, s.failed);
        assert_eq!(p.serial_iterations, s.serial_iterations);
    }
}
