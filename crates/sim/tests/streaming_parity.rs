//! Stream-vs-offline parity: sliding-window streaming decoding must
//! reproduce offline whole-syndrome decoding — exactly when one window
//! covers the whole experiment, and to a pinned LER tolerance when
//! genuine windowing (overlap + commit + carry) is in play.
//!
//! Both runners consume the shot RNG identically, so at equal seeds
//! they decode *identical* error patterns; the comparison has no
//! sampling noise between the two arms, only the windowing
//! approximation itself.

use qldpc_circuit::{window_plan, MemoryExperiment, NoiseModel};
use qldpc_codes::bb;
use qldpc_sim::{decoders, run_streaming, run_streaming_offline_reference, StreamingConfig};
use std::sync::Arc;

/// Debug builds (tier-1 `cargo test`) run a trimmed soak; the release
/// CI job runs the full one.
const SHOTS: usize = if cfg!(debug_assertions) { 48 } else { 400 };

/// With `W >= R` the plan degenerates to one window over the full
/// detector history: same matrix, same priors, no spill, no carry — the
/// streamed decode is bit-identical to the offline one, so failure and
/// unsolved counts must match exactly.
#[test]
fn single_window_stream_matches_offline_exactly() {
    let rounds = 2;
    let exp =
        MemoryExperiment::memory_z(&bb::bb72(), rounds, &NoiseModel::uniform_depolarizing(2e-3));
    let dem = exp.detector_error_model();
    let k = dem.num_detectors() / (rounds + 1);
    // W covers every round block: one window, commit-everything.
    let plan = Arc::new(window_plan(&dem, k, rounds + 1, rounds + 1));
    assert_eq!(plan.num_windows(), 1);

    let config = StreamingConfig {
        shots: SHOTS,
        seed: 11,
        threads: 2,
        shards: 2,
    };
    let stream = run_streaming(
        &dem,
        plan,
        "bb72 r2 single-window",
        &config,
        decoders::window_bp(60),
    );
    let offline =
        run_streaming_offline_reference(&dem, "bb72 r2 offline", &config, &decoders::plain_bp(60));
    assert_eq!(stream.shots, offline.shots);
    assert_eq!(
        stream.failures,
        offline.failures,
        "single-window streaming must fail on exactly the offline failures \
         (stream: {}, offline: {})",
        stream.summary(),
        offline.failures,
    );
    assert_eq!(stream.unsolved, offline.unsolved);
    assert!(stream.rounds_per_sec() > 0.0);
}

/// The headline parity soak on the gross code: genuine sliding windows
/// (W=3, C=1 over a 4-round memory) against the offline decode of the
/// same shots. Windowed BP is an approximation — commitment freezes
/// boundary beliefs early — so the LERs differ per shot, but the rates
/// must stay close at fixed seeds.
#[test]
fn windowed_stream_parity_on_gross_code() {
    let rounds = 4;
    let exp = MemoryExperiment::memory_z(
        &bb::gross_code(),
        rounds,
        &NoiseModel::uniform_depolarizing(2e-3),
    );
    let dem = exp.detector_error_model();
    let k = dem.num_detectors() / (rounds + 1);
    let plan = Arc::new(window_plan(&dem, k, 3, 1));
    assert!(plan.num_windows() > 1, "soak must exercise real windowing");

    let config = StreamingConfig {
        shots: SHOTS,
        seed: 23,
        threads: 2,
        shards: 2,
    };
    let stream = run_streaming(
        &dem,
        Arc::clone(&plan),
        "gross r4 W3C1",
        &config,
        decoders::window_bp(60),
    );
    let offline =
        run_streaming_offline_reference(&dem, "gross r4 offline", &config, &decoders::plain_bp(60));
    let (ls, lo) = (stream.ler(), offline.ler());
    // Both arms are deterministic at fixed seeds (min-sum is bit-exact,
    // batching is lane-independent), so these are constants, not samples:
    // measured gap 0.140 in release (0.160 vs 0.020 over 400 shots) and
    // 0.021 in debug (48 shots). Pinned with headroom — a broken
    // spill/carry path sends the stream LER toward 1 and fails loudly.
    let tolerance = 0.2;
    assert!(
        (ls - lo).abs() <= tolerance,
        "stream/offline LER diverged: stream {ls:.3} vs offline {lo:.3} \
         ({} | offline failures {})",
        stream.summary(),
        offline.failures,
    );
    assert!(stream.rounds_per_sec() > 0.0);
}
