//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `pred` holds (bounded; panics with
    /// `reason` if the predicate keeps failing).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
    }
}

/// A strategy producing one fixed value (cloned per case).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn ranges_and_combinators_generate_in_bounds() {
        let mut rng = new_rng();
        let s = (1usize..5, 0u64..10).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v <= 13);
        }
        let evens = (0usize..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
        let dependent = (2usize..6).prop_flat_map(|n| (0usize..n).prop_map(move |i| (n, i)));
        for _ in 0..100 {
            let (n, i) = dependent.generate(&mut rng);
            assert!(i < n);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
