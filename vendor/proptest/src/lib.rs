//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(…)]`), the
//! [`Strategy`](strategy::Strategy)
//! trait with `prop_map` / `prop_flat_map` / `prop_filter`, integer and
//! float range strategies, tuple strategies, [`collection::vec`] /
//! [`collection::btree_set`], and [`bool::ANY`] / [`bool::weighted`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its case number (stderr)
//!   and re-raises the panic; generation is deterministic, so rerunning
//!   the test replays the same case sequence for debugging.
//! * **Fixed seeding** — every test fn draws from the same deterministic
//!   seed, so CI runs are exactly reproducible (no `PROPTEST_` env vars).

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The everyday imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test (no shrinking, so this is
/// plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition fails (the case still
/// counts toward the configured total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::new_rng();
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __run = || $body;
                if let Err(__panic) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run))
                {
                    eprintln!(
                        "proptest: test `{}` failed at case {}/{} (deterministic seed; \
                         rerun replays the same cases)",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn macro_runs_every_case(x in 0usize..100) {
            prop_assert!(x < 100);
        }

        #[test]
        #[should_panic]
        fn failing_case_reraises_the_panic(x in 10usize..20) {
            prop_assert!(x < 15, "x was {x}");
        }
    }
}
