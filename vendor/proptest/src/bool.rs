//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A fair coin.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The fair-coin strategy value, mirroring `proptest::bool::ANY`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

/// `true` with probability `p`.
pub fn weighted(p: f64) -> Weighted {
    Weighted { p }
}

/// See [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random_bool(self.p)
    }
}
