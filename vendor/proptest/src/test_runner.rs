//! Test-runner configuration and the deterministic case RNG.

/// The generator property tests draw from.
pub type TestRng = rand::rngs::StdRng;

/// A fresh deterministic RNG; every `proptest!` test fn starts from this
/// same stream so runs are exactly reproducible.
pub fn new_rng() -> TestRng {
    <TestRng as rand::SeedableRng>::seed_from_u64(0x5eed_cafe_f00d_0001)
}

/// Per-block configuration (only `cases` is honored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test fn.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}
