//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Anything usable as a collection size: an exact `usize` or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi_inclusive {
            self.lo
        } else {
            rng.random_range(self.lo..=self.hi_inclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
/// Duplicate draws are retried a bounded number of times, so tiny element
/// domains can yield sets below the requested size.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 50 + 50 {
            attempts += 1;
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn vec_sizes_honor_exact_and_ranged() {
        let mut rng = new_rng();
        for _ in 0..50 {
            assert_eq!(vec(0usize..4, 7usize).generate(&mut rng).len(), 7);
            let v = vec(0usize..4, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_sets_are_distinct_and_sized() {
        let mut rng = new_rng();
        for _ in 0..50 {
            let s = btree_set(0usize..100, 3..6).generate(&mut rng);
            assert!((3..6).contains(&s.len()));
        }
    }
}
