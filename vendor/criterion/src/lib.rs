//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Keeps criterion's bench-definition API (`criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_with_input`,
//! `Bencher::iter`, [`black_box`]) so benches compile and run hermetically,
//! but replaces the statistics engine with a simple
//! median-of-samples timer printed to stdout. Invoke with `--test` (as
//! `cargo test --benches` does) to run each benchmark body once and skip
//! measurement.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value barrier; forwards to
/// [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement settings shared by a group's benches.
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Timed samples per benchmark.
    sample_size: usize,
    /// Soft wall-clock budget per benchmark.
    budget: Duration,
    /// Run each body exactly once, untimed (test mode).
    smoke_only: bool,
}

impl Settings {
    fn from_args() -> Self {
        let smoke_only = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            budget: Duration::from_millis(500),
            smoke_only,
        }
    }
}

/// The harness entry point; one per process, created by
/// [`criterion_main!`].
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            settings: Settings::from_args(),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.settings, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.settings, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.settings, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    settings: Settings,
    /// Median time per iteration from the last `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.settings.smoke_only {
            black_box(f());
            return;
        }
        // Warm-up, then decide how many inner iterations make one sample.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.settings.budget / (self.settings.sample_size as u32);
        let inner = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut samples = Vec::with_capacity(self.settings.sample_size);
        let deadline = Instant::now() + self.settings.budget;
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            samples.push(start.elapsed() / inner);
            if Instant::now() > deadline {
                break;
            }
        }
        samples.sort_unstable();
        self.last_median = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F>(id: &str, settings: Settings, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        settings,
        last_median: None,
    };
    f(&mut b);
    if settings.smoke_only {
        println!("{id}: ok (smoke)");
    } else {
        match b.last_median {
            Some(t) => println!("{id}: median {t:?}"),
            None => println!("{id}: no measurement (Bencher::iter never called)"),
        }
    }
}

/// Declares a group fn that runs the listed benchmark fns.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trips() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 3,
                budget: Duration::from_millis(20),
                smoke_only: false,
            },
        };
        let mut ran = 0u32;
        c.bench_function("standalone", |b| b.iter(|| black_box(3u64 * 7)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.bench_function("named", |b| b.iter(|| black_box(1u8)));
        g.finish();
        ran += 1;
        assert_eq!(ran, 1);
    }
}
