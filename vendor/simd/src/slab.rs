//! A 64-byte-aligned growable buffer for structure-of-arrays slabs.

use std::alloc::{alloc, alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment of every [`AlignedSlab`] allocation: one x86-64 cache line
/// and the full register width of AVX-512, so aligned wide loads are
/// valid from element zero of any slab regardless of dispatch target.
pub const SLAB_ALIGN: usize = 64;

/// A `Vec`-like buffer whose allocation is always [`SLAB_ALIGN`]-aligned.
///
/// The batch decoder's message arrays live in these so explicit wide
/// kernels can use aligned loads/stores without runtime alignment
/// checks. Only the handful of `Vec` operations the decoder needs are
/// provided; `Deref<Target = [T]>` covers the rest.
///
/// `T` is constrained to `Copy` (the slabs hold floats, lane indices
/// and flags), which makes growth a plain byte copy and drop a plain
/// deallocation.
pub struct AlignedSlab<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
    _marker: PhantomData<T>,
}

// SAFETY: an AlignedSlab owns its allocation exclusively, exactly like
// Vec<T>; with T: Copy (hence Send + Sync have no interior mutability
// to worry about for the element types used here) the container is as
// thread-safe as a Vec of the same element type.
unsafe impl<T: Copy + Send> Send for AlignedSlab<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedSlab<T> {}

impl<T: Copy> AlignedSlab<T> {
    /// An empty slab (no allocation until first growth).
    pub const fn new() -> Self {
        Self {
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
            _marker: PhantomData,
        }
    }

    /// An empty slab with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        let mut slab = Self::new();
        slab.reserve(cap);
        slab
    }

    /// A slab of `len` zero-filled elements.
    ///
    /// The all-zero bit pattern is a valid value for every element type
    /// the decoders store (floats, unsigned indices, flag bytes).
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self::new();
        }
        let layout = Self::layout_for(len);
        // SAFETY: layout has non-zero size (len > 0, and layout_for
        // rejects zero-size T by construction of its callers — debug
        // asserted below).
        debug_assert!(std::mem::size_of::<T>() > 0);
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        Self {
            ptr,
            len,
            cap: len,
            _marker: PhantomData,
        }
    }

    fn layout_for(cap: usize) -> Layout {
        let bytes = std::mem::size_of::<T>()
            .checked_mul(cap)
            .expect("slab capacity overflows");
        // Element alignment never exceeds SLAB_ALIGN for the primitive
        // types stored here; take the max anyway so the layout is valid
        // for any future T.
        let align = SLAB_ALIGN.max(std::mem::align_of::<T>());
        Layout::from_size_align(bytes, align).expect("slab layout invalid")
    }

    /// Number of elements the slab can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Ensures capacity for at least `additional` more elements.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len.checked_add(additional).expect("slab len overflow");
        if needed <= self.cap {
            return;
        }
        let new_cap = needed.max(self.cap * 2).max(8);
        let new_layout = Self::layout_for(new_cap);
        // SAFETY: new_layout has non-zero size (new_cap >= 8 and T is
        // non-zero-sized for all instantiations used here).
        let raw = unsafe { alloc(new_layout) };
        let Some(new_ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(new_layout)
        };
        if self.cap != 0 {
            // SAFETY: both regions are valid for self.len elements and
            // freshly disjoint; the old allocation used layout_for(cap).
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
                dealloc(self.ptr.as_ptr().cast(), Self::layout_for(self.cap));
            }
        }
        self.ptr = new_ptr;
        self.cap = new_cap;
    }

    /// Drops all elements (capacity is retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends one element.
    pub fn push(&mut self, value: T) {
        self.reserve(1);
        // SAFETY: reserve guaranteed room at index len.
        unsafe { self.ptr.as_ptr().add(self.len).write(value) };
        self.len += 1;
    }

    /// Resizes to `new_len`, filling new elements with `value`.
    pub fn resize(&mut self, new_len: usize, value: T) {
        if new_len > self.len {
            self.reserve(new_len - self.len);
            // SAFETY: reserve guaranteed capacity >= new_len.
            unsafe {
                for i in self.len..new_len {
                    self.ptr.as_ptr().add(i).write(value);
                }
            }
        }
        self.len = new_len;
    }

    /// Appends a copy of `src`.
    pub fn extend_from_slice(&mut self, src: &[T]) {
        self.reserve(src.len());
        // SAFETY: reserve guaranteed room; src cannot overlap a &mut self.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.as_ptr().add(self.len), src.len());
        }
        self.len += src.len();
    }

    /// The raw base pointer (always [`SLAB_ALIGN`]-aligned once
    /// allocated; dangling while empty).
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// The raw mutable base pointer.
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T: Copy> Drop for AlignedSlab<T> {
    fn drop(&mut self) {
        if self.cap != 0 {
            // SAFETY: allocation was made with layout_for(cap).
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout_for(self.cap)) };
        }
    }
}

impl<T: Copy> Deref for AlignedSlab<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // SAFETY: ptr is valid for len initialized elements (dangling
        // only when len == 0, where an empty slice is valid).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> DerefMut for AlignedSlab<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as Deref, with exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> Default for AlignedSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Clone for AlignedSlab<T> {
    fn clone(&self) -> Self {
        let mut out = Self::with_capacity(self.len);
        out.extend_from_slice(self);
        out
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedSlab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedSlab<T> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy> FromIterator<T> for AlignedSlab<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut slab = Self::with_capacity(iter.size_hint().0);
        for v in iter {
            slab.push(v);
        }
        slab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_slab_aligned() {
        for len in [1usize, 7, 64, 129, 1000] {
            let slab = AlignedSlab::<f32>::zeroed(len);
            assert_eq!(slab.as_ptr() as usize % SLAB_ALIGN, 0, "len {len}");
            assert_eq!(slab.len(), len);
            assert!(slab.iter().all(|&x| x == 0.0));
        }
        let mut grown = AlignedSlab::<f64>::new();
        for i in 0..333 {
            grown.push(i as f64);
        }
        assert_eq!(grown.as_ptr() as usize % SLAB_ALIGN, 0);
        assert_eq!(grown.len(), 333);
        assert_eq!(grown[332], 332.0);
    }

    #[test]
    fn resize_clear_extend_match_vec_semantics() {
        let mut slab = AlignedSlab::<u32>::new();
        let mut vec = Vec::<u32>::new();
        slab.resize(10, 7);
        vec.resize(10, 7);
        assert_eq!(&slab[..], &vec[..]);
        slab.resize(3, 0);
        vec.resize(3, 0);
        assert_eq!(&slab[..], &vec[..]);
        slab.extend_from_slice(&[1, 2, 3]);
        vec.extend_from_slice(&[1, 2, 3]);
        assert_eq!(&slab[..], &vec[..]);
        slab.clear();
        vec.clear();
        assert_eq!(&slab[..], &vec[..]);
        slab.resize(5, 9);
        assert_eq!(&slab[..], &[9, 9, 9, 9, 9]);
    }

    #[test]
    fn clone_and_eq() {
        let a: AlignedSlab<u64> = (0..100).collect();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ptr() as usize % SLAB_ALIGN, 0);
        let mut c = b.clone();
        c[99] = 0;
        assert_ne!(a, c);
    }

    #[test]
    fn empty_slab_is_safe() {
        let slab = AlignedSlab::<f32>::new();
        assert!(slab.is_empty());
        assert_eq!(&slab[..], &[] as &[f32]);
        let cloned = slab.clone();
        assert!(cloned.is_empty());
        assert_eq!(AlignedSlab::<f32>::zeroed(0).len(), 0);
    }
}
