//! Explicit wide vector operations, one implementation per target.
//!
//! The op set is the exact closure of what the batch BP kernels need,
//! and every op is chosen to perform, per lane, *precisely* the scalar
//! IEEE-754 operation of the reference decoder:
//!
//! * comparisons are ordered less-than (`_CMP_LT_OQ` / `vclt`), which
//!   matches Rust's `<` on floats (`NaN` compares false);
//! * selection is compare-then-blend — never `min`/`max` intrinsics,
//!   whose `NaN` semantics differ from branchy scalar code;
//! * negation is a sign-bit XOR and absolute value clears the sign bit,
//!   both exact and total (no flush, no `NaN` special-casing);
//! * there is no FMA: products and sums round individually, like the
//!   scalar code.
//!
//! Lanes are independent shots of the batch decoder, so vectorizing
//! over them with these ops is bit-exact by construction.

/// A wide vector of `Elem` floats (`f32` or `f64`).
///
/// All methods are `unsafe` with one shared contract: **the CPU must
/// support this type's instruction set** (see the implementing module).
/// Callers uphold it by only reaching these types through
/// [`SimdTarget`](crate::SimdTarget) dispatch after runtime detection.
/// Loads and stores additionally require the pointer to be valid for
/// [`LANES`](Self::LANES) consecutive elements (no alignment demanded:
/// all memory ops are unaligned-tolerant).
pub trait SimdF: Copy {
    /// The scalar element type of one lane.
    type Elem: Copy;
    /// The companion lane-index vector (one integer per lane, wide
    /// enough to blend under this type's compare masks).
    type Idx: Copy;
    /// Number of lanes.
    const LANES: usize;

    /// Broadcasts `x` to all lanes.
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn splat(x: Self::Elem) -> Self;

    /// Loads `LANES` elements from `ptr` (unaligned ok).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set and `ptr` must
    /// be valid for `LANES` reads.
    unsafe fn load(ptr: *const Self::Elem) -> Self;

    /// Stores `LANES` elements to `ptr` (unaligned ok).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set and `ptr` must
    /// be valid for `LANES` writes.
    unsafe fn store(self, ptr: *mut Self::Elem);

    /// Lanewise `self + o` (single rounding, no FMA).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn add(self, o: Self) -> Self;

    /// Lanewise `self - o`.
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn sub(self, o: Self) -> Self;

    /// Lanewise `self * o` (single rounding, no FMA).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn mul(self, o: Self) -> Self;

    /// Lanewise absolute value (clears the sign bit; `abs(NaN)` keeps
    /// the `NaN` payload's magnitude bits, exactly like scalar `abs`).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn abs(self) -> Self;

    /// Lanewise negation (sign-bit XOR, exact for every input
    /// including `±0.0`, `±INF` and `NaN`).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn neg(self) -> Self;

    /// Lanewise `if a < b { t } else { f }` with Rust `<` semantics
    /// (`NaN` on either side selects `f`).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self;

    /// Broadcasts lane index `i` to all lanes of an index vector.
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn idx_splat(i: u32) -> Self::Idx;

    /// Index-vector select under a float compare: lanewise
    /// `if a < b { t } else { f }`.
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn idx_select_lt(a: Self, b: Self, t: Self::Idx, f: Self::Idx) -> Self::Idx;

    /// Float select under an index compare: lanewise
    /// `if i == j { t } else { f }`.
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn select_idx_eq(i: Self::Idx, j: Self::Idx, t: Self, f: Self) -> Self;
}

/// A wide vector of bytes (for parity/flag slab passes).
///
/// Same safety contract as [`SimdF`]: the CPU must support the
/// implementing type's instruction set; loads/stores must cover
/// [`LANES`](Self::LANES) bytes.
pub trait SimdBytes: Copy {
    /// Number of byte lanes.
    const LANES: usize;

    /// Broadcasts `x` to all lanes.
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn splat(x: u8) -> Self;

    /// Loads `LANES` bytes from `ptr` (unaligned ok).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set and `ptr` must
    /// be valid for `LANES` reads.
    unsafe fn load(ptr: *const u8) -> Self;

    /// Stores `LANES` bytes to `ptr` (unaligned ok).
    ///
    /// # Safety
    /// The CPU must support this type's instruction set and `ptr` must
    /// be valid for `LANES` writes.
    unsafe fn store(self, ptr: *mut u8);

    /// Lanewise XOR.
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn xor(self, o: Self) -> Self;

    /// Lanewise AND.
    ///
    /// # Safety
    /// The CPU must support this type's instruction set.
    unsafe fn and(self, o: Self) -> Self;
}

/// 256-bit AVX2 vectors (`f32x8`, `f64x4`, `u8x32`).
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::{SimdBytes, SimdF};
    use std::arch::x86_64::*;

    /// Eight `f32` lanes in one `__m256`.
    #[derive(Clone, Copy)]
    pub struct F32x8(pub __m256);
    /// Eight `u32` lane indices in one `__m256i`.
    #[derive(Clone, Copy)]
    pub struct I32x8(pub __m256i);
    /// Four `f64` lanes in one `__m256d`.
    #[derive(Clone, Copy)]
    pub struct F64x4(pub __m256d);
    /// Four `u64` lane indices in one `__m256i`.
    #[derive(Clone, Copy)]
    pub struct I64x4(pub __m256i);
    /// Thirty-two byte lanes in one `__m256i`.
    #[derive(Clone, Copy)]
    pub struct B8x32(pub __m256i);

    impl SimdF for F32x8 {
        type Elem = f32;
        type Idx = I32x8;
        const LANES: usize = 8;

        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(_mm256_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            Self(_mm256_loadu_ps(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            _mm256_storeu_ps(ptr, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(_mm256_add_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            Self(_mm256_sub_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(_mm256_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn abs(self) -> Self {
            Self(_mm256_andnot_ps(_mm256_set1_ps(-0.0), self.0))
        }
        #[inline(always)]
        unsafe fn neg(self) -> Self {
            Self(_mm256_xor_ps(_mm256_set1_ps(-0.0), self.0))
        }
        #[inline(always)]
        unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self {
            let m = _mm256_cmp_ps::<_CMP_LT_OQ>(a.0, b.0);
            Self(_mm256_blendv_ps(f.0, t.0, m))
        }
        #[inline(always)]
        unsafe fn idx_splat(i: u32) -> I32x8 {
            I32x8(_mm256_set1_epi32(i as i32))
        }
        #[inline(always)]
        unsafe fn idx_select_lt(a: Self, b: Self, t: I32x8, f: I32x8) -> I32x8 {
            let m = _mm256_cmp_ps::<_CMP_LT_OQ>(a.0, b.0);
            I32x8(_mm256_blendv_epi8(f.0, t.0, _mm256_castps_si256(m)))
        }
        #[inline(always)]
        unsafe fn select_idx_eq(i: I32x8, j: I32x8, t: Self, f: Self) -> Self {
            let m = _mm256_cmpeq_epi32(i.0, j.0);
            Self(_mm256_blendv_ps(f.0, t.0, _mm256_castsi256_ps(m)))
        }
    }

    impl SimdF for F64x4 {
        type Elem = f64;
        type Idx = I64x4;
        const LANES: usize = 4;

        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(_mm256_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            Self(_mm256_loadu_pd(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            _mm256_storeu_pd(ptr, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(_mm256_add_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            Self(_mm256_sub_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(_mm256_mul_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn abs(self) -> Self {
            Self(_mm256_andnot_pd(_mm256_set1_pd(-0.0), self.0))
        }
        #[inline(always)]
        unsafe fn neg(self) -> Self {
            Self(_mm256_xor_pd(_mm256_set1_pd(-0.0), self.0))
        }
        #[inline(always)]
        unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self {
            let m = _mm256_cmp_pd::<_CMP_LT_OQ>(a.0, b.0);
            Self(_mm256_blendv_pd(f.0, t.0, m))
        }
        #[inline(always)]
        unsafe fn idx_splat(i: u32) -> I64x4 {
            I64x4(_mm256_set1_epi64x(i as i64))
        }
        #[inline(always)]
        unsafe fn idx_select_lt(a: Self, b: Self, t: I64x4, f: I64x4) -> I64x4 {
            let m = _mm256_cmp_pd::<_CMP_LT_OQ>(a.0, b.0);
            I64x4(_mm256_blendv_epi8(f.0, t.0, _mm256_castpd_si256(m)))
        }
        #[inline(always)]
        unsafe fn select_idx_eq(i: I64x4, j: I64x4, t: Self, f: Self) -> Self {
            let m = _mm256_cmpeq_epi64(i.0, j.0);
            Self(_mm256_blendv_pd(f.0, t.0, _mm256_castsi256_pd(m)))
        }
    }

    impl SimdBytes for B8x32 {
        const LANES: usize = 32;

        #[inline(always)]
        unsafe fn splat(x: u8) -> Self {
            Self(_mm256_set1_epi8(x as i8))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const u8) -> Self {
            Self(_mm256_loadu_si256(ptr.cast()))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut u8) {
            _mm256_storeu_si256(ptr.cast(), self.0)
        }
        #[inline(always)]
        unsafe fn xor(self, o: Self) -> Self {
            Self(_mm256_xor_si256(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn and(self, o: Self) -> Self {
            Self(_mm256_and_si256(self.0, o.0))
        }
    }
}

/// 512-bit AVX-512 vectors (`f32x16`, `f64x8`, `u8x64`); requires
/// F + BW + DQ + VL as a bundle (matching the dispatcher's check).
#[cfg(target_arch = "x86_64")]
pub mod avx512 {
    use super::{SimdBytes, SimdF};
    use std::arch::x86_64::*;

    /// Sixteen `f32` lanes in one `__m512`.
    #[derive(Clone, Copy)]
    pub struct F32x16(pub __m512);
    /// Sixteen `u32` lane indices in one `__m512i`.
    #[derive(Clone, Copy)]
    pub struct I32x16(pub __m512i);
    /// Eight `f64` lanes in one `__m512d`.
    #[derive(Clone, Copy)]
    pub struct F64x8(pub __m512d);
    /// Eight `u64` lane indices in one `__m512i`.
    #[derive(Clone, Copy)]
    pub struct I64x8(pub __m512i);
    /// Sixty-four byte lanes in one `__m512i`.
    #[derive(Clone, Copy)]
    pub struct B8x64(pub __m512i);

    impl SimdF for F32x16 {
        type Elem = f32;
        type Idx = I32x16;
        const LANES: usize = 16;

        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(_mm512_set1_ps(x))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            Self(_mm512_loadu_ps(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            _mm512_storeu_ps(ptr, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(_mm512_add_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            Self(_mm512_sub_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(_mm512_mul_ps(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn abs(self) -> Self {
            Self(_mm512_abs_ps(self.0))
        }
        #[inline(always)]
        unsafe fn neg(self) -> Self {
            Self(_mm512_xor_ps(_mm512_set1_ps(-0.0), self.0))
        }
        #[inline(always)]
        unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self {
            let k = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(a.0, b.0);
            Self(_mm512_mask_blend_ps(k, f.0, t.0))
        }
        #[inline(always)]
        unsafe fn idx_splat(i: u32) -> I32x16 {
            I32x16(_mm512_set1_epi32(i as i32))
        }
        #[inline(always)]
        unsafe fn idx_select_lt(a: Self, b: Self, t: I32x16, f: I32x16) -> I32x16 {
            let k = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(a.0, b.0);
            I32x16(_mm512_mask_blend_epi32(k, f.0, t.0))
        }
        #[inline(always)]
        unsafe fn select_idx_eq(i: I32x16, j: I32x16, t: Self, f: Self) -> Self {
            let k = _mm512_cmpeq_epi32_mask(i.0, j.0);
            Self(_mm512_mask_blend_ps(k, f.0, t.0))
        }
    }

    impl SimdF for F64x8 {
        type Elem = f64;
        type Idx = I64x8;
        const LANES: usize = 8;

        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(_mm512_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            Self(_mm512_loadu_pd(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            _mm512_storeu_pd(ptr, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(_mm512_add_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            Self(_mm512_sub_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(_mm512_mul_pd(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn abs(self) -> Self {
            Self(_mm512_abs_pd(self.0))
        }
        #[inline(always)]
        unsafe fn neg(self) -> Self {
            Self(_mm512_xor_pd(_mm512_set1_pd(-0.0), self.0))
        }
        #[inline(always)]
        unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self {
            let k = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(a.0, b.0);
            Self(_mm512_mask_blend_pd(k, f.0, t.0))
        }
        #[inline(always)]
        unsafe fn idx_splat(i: u32) -> I64x8 {
            I64x8(_mm512_set1_epi64(i as i64))
        }
        #[inline(always)]
        unsafe fn idx_select_lt(a: Self, b: Self, t: I64x8, f: I64x8) -> I64x8 {
            let k = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(a.0, b.0);
            I64x8(_mm512_mask_blend_epi64(k, f.0, t.0))
        }
        #[inline(always)]
        unsafe fn select_idx_eq(i: I64x8, j: I64x8, t: Self, f: Self) -> Self {
            let k = _mm512_cmpeq_epi64_mask(i.0, j.0);
            Self(_mm512_mask_blend_pd(k, f.0, t.0))
        }
    }

    impl SimdBytes for B8x64 {
        const LANES: usize = 64;

        #[inline(always)]
        unsafe fn splat(x: u8) -> Self {
            Self(_mm512_set1_epi8(x as i8))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const u8) -> Self {
            Self(_mm512_loadu_si512(ptr.cast()))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut u8) {
            _mm512_storeu_si512(ptr.cast(), self.0)
        }
        #[inline(always)]
        unsafe fn xor(self, o: Self) -> Self {
            Self(_mm512_xor_si512(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn and(self, o: Self) -> Self {
            Self(_mm512_and_si512(self.0, o.0))
        }
    }
}

/// 128-bit NEON vectors on aarch64 (`f32x4`, `f64x2`, `u8x16`).
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use super::{SimdBytes, SimdF};
    use std::arch::aarch64::*;

    /// Four `f32` lanes in one `float32x4_t`.
    #[derive(Clone, Copy)]
    pub struct F32x4(pub float32x4_t);
    /// Four `u32` lane indices in one `uint32x4_t`.
    #[derive(Clone, Copy)]
    pub struct U32x4(pub uint32x4_t);
    /// Two `f64` lanes in one `float64x2_t`.
    #[derive(Clone, Copy)]
    pub struct F64x2(pub float64x2_t);
    /// Two `u64` lane indices in one `uint64x2_t`.
    #[derive(Clone, Copy)]
    pub struct U64x2(pub uint64x2_t);
    /// Sixteen byte lanes in one `uint8x16_t`.
    #[derive(Clone, Copy)]
    pub struct B8x16(pub uint8x16_t);

    impl SimdF for F32x4 {
        type Elem = f32;
        type Idx = U32x4;
        const LANES: usize = 4;

        #[inline(always)]
        unsafe fn splat(x: f32) -> Self {
            Self(vdupq_n_f32(x))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f32) -> Self {
            Self(vld1q_f32(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f32) {
            vst1q_f32(ptr, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(vaddq_f32(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            Self(vsubq_f32(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(vmulq_f32(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn abs(self) -> Self {
            Self(vabsq_f32(self.0))
        }
        #[inline(always)]
        unsafe fn neg(self) -> Self {
            Self(vnegq_f32(self.0))
        }
        #[inline(always)]
        unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self {
            Self(vbslq_f32(vcltq_f32(a.0, b.0), t.0, f.0))
        }
        #[inline(always)]
        unsafe fn idx_splat(i: u32) -> U32x4 {
            U32x4(vdupq_n_u32(i))
        }
        #[inline(always)]
        unsafe fn idx_select_lt(a: Self, b: Self, t: U32x4, f: U32x4) -> U32x4 {
            U32x4(vbslq_u32(vcltq_f32(a.0, b.0), t.0, f.0))
        }
        #[inline(always)]
        unsafe fn select_idx_eq(i: U32x4, j: U32x4, t: Self, f: Self) -> Self {
            Self(vbslq_f32(vceqq_u32(i.0, j.0), t.0, f.0))
        }
    }

    impl SimdF for F64x2 {
        type Elem = f64;
        type Idx = U64x2;
        const LANES: usize = 2;

        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            Self(vdupq_n_f64(x))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            Self(vld1q_f64(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            vst1q_f64(ptr, self.0)
        }
        #[inline(always)]
        unsafe fn add(self, o: Self) -> Self {
            Self(vaddq_f64(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn sub(self, o: Self) -> Self {
            Self(vsubq_f64(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn mul(self, o: Self) -> Self {
            Self(vmulq_f64(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn abs(self) -> Self {
            Self(vabsq_f64(self.0))
        }
        #[inline(always)]
        unsafe fn neg(self) -> Self {
            Self(vnegq_f64(self.0))
        }
        #[inline(always)]
        unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self {
            Self(vbslq_f64(vcltq_f64(a.0, b.0), t.0, f.0))
        }
        #[inline(always)]
        unsafe fn idx_splat(i: u32) -> U64x2 {
            U64x2(vdupq_n_u64(i as u64))
        }
        #[inline(always)]
        unsafe fn idx_select_lt(a: Self, b: Self, t: U64x2, f: U64x2) -> U64x2 {
            U64x2(vbslq_u64(vcltq_f64(a.0, b.0), t.0, f.0))
        }
        #[inline(always)]
        unsafe fn select_idx_eq(i: U64x2, j: U64x2, t: Self, f: Self) -> Self {
            Self(vbslq_f64(vceqq_u64(i.0, j.0), t.0, f.0))
        }
    }

    impl SimdBytes for B8x16 {
        const LANES: usize = 16;

        #[inline(always)]
        unsafe fn splat(x: u8) -> Self {
            Self(vdupq_n_u8(x))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const u8) -> Self {
            Self(vld1q_u8(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut u8) {
            vst1q_u8(ptr, self.0)
        }
        #[inline(always)]
        unsafe fn xor(self, o: Self) -> Self {
            Self(veorq_u8(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn and(self, o: Self) -> Self {
            Self(vandq_u8(self.0, o.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimdTarget;

    /// Scalar reference for `select_lt`, with Rust `<` semantics.
    fn ref_select_lt(a: f64, b: f64, t: f64, f: f64) -> f64 {
        if a < b {
            t
        } else {
            f
        }
    }

    /// Awkward float inputs: signed zeros, infinities, NaN, subnormal.
    fn probes() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.5,
            -1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE / 2.0,
            1e6,
            -1e6,
        ]
    }

    /// Exercises one SimdF impl across lanes of awkward values and
    /// checks each op bit-for-bit against the scalar semantics.
    ///
    /// Generic over the vector; instantiated per available target.
    macro_rules! check_float_ops {
        ($name:ident, $vec:ty, $elem:ty, $target:expr) => {
            #[test]
            fn $name() {
                if !$target.is_available() {
                    eprintln!("skipping: target unavailable");
                    return;
                }
                type V = $vec;
                const W: usize = <$vec as SimdF>::LANES;
                let probes: Vec<$elem> = probes().iter().map(|&x| x as $elem).collect();
                let n = probes.len();
                // All rotations so every probe value meets every other.
                for rot in 0..n {
                    let mut a = vec![0 as $elem; W];
                    let mut b = vec![0 as $elem; W];
                    for l in 0..W {
                        a[l] = probes[l % n];
                        b[l] = probes[(l + rot) % n];
                    }
                    // SAFETY: availability checked above; buffers hold
                    // exactly W elements.
                    unsafe {
                        let va = V::load(a.as_ptr());
                        let vb = V::load(b.as_ptr());
                        let mut out = vec![0 as $elem; W];

                        va.add(vb).store(out.as_mut_ptr());
                        for l in 0..W {
                            assert_eq!(out[l].to_bits(), (a[l] + b[l]).to_bits(), "add lane {l}");
                        }
                        va.sub(vb).store(out.as_mut_ptr());
                        for l in 0..W {
                            assert_eq!(out[l].to_bits(), (a[l] - b[l]).to_bits(), "sub lane {l}");
                        }
                        va.mul(vb).store(out.as_mut_ptr());
                        for l in 0..W {
                            assert_eq!(out[l].to_bits(), (a[l] * b[l]).to_bits(), "mul lane {l}");
                        }
                        va.abs().store(out.as_mut_ptr());
                        for l in 0..W {
                            assert_eq!(out[l].to_bits(), a[l].abs().to_bits(), "abs lane {l}");
                        }
                        va.neg().store(out.as_mut_ptr());
                        for l in 0..W {
                            assert_eq!(out[l].to_bits(), (-a[l]).to_bits(), "neg lane {l}");
                        }
                        let t = V::splat(7.0 as $elem);
                        let f = V::splat(-7.0 as $elem);
                        V::select_lt(va, vb, t, f).store(out.as_mut_ptr());
                        for l in 0..W {
                            let want = ref_select_lt(a[l] as f64, b[l] as f64, 7.0, -7.0) as $elem;
                            assert_eq!(out[l].to_bits(), want.to_bits(), "select_lt lane {l}");
                        }
                        // idx_select_lt + select_idx_eq round-trip: pick
                        // index 3 where a<b else index 9, then map index
                        // 3 back to +1.0.
                        let i3 = V::idx_splat(3);
                        let i9 = V::idx_splat(9);
                        let idx = V::idx_select_lt(va, vb, i3, i9);
                        V::select_idx_eq(idx, i3, V::splat(1.0 as $elem), V::splat(0 as $elem))
                            .store(out.as_mut_ptr());
                        for l in 0..W {
                            let want: $elem = if (a[l] as f64) < (b[l] as f64) {
                                1.0 as $elem
                            } else {
                                0 as $elem
                            };
                            assert_eq!(out[l].to_bits(), want.to_bits(), "idx ops lane {l}");
                        }
                    }
                }
            }
        };
    }

    #[cfg(target_arch = "x86_64")]
    check_float_ops!(
        avx2_f32_ops_match_scalar,
        avx2::F32x8,
        f32,
        SimdTarget::Avx2
    );
    #[cfg(target_arch = "x86_64")]
    check_float_ops!(
        avx2_f64_ops_match_scalar,
        avx2::F64x4,
        f64,
        SimdTarget::Avx2
    );
    #[cfg(target_arch = "x86_64")]
    check_float_ops!(
        avx512_f32_ops_match_scalar,
        avx512::F32x16,
        f32,
        SimdTarget::Avx512
    );
    #[cfg(target_arch = "x86_64")]
    check_float_ops!(
        avx512_f64_ops_match_scalar,
        avx512::F64x8,
        f64,
        SimdTarget::Avx512
    );
    #[cfg(target_arch = "aarch64")]
    check_float_ops!(
        neon_f32_ops_match_scalar,
        neon::F32x4,
        f32,
        SimdTarget::Neon
    );
    #[cfg(target_arch = "aarch64")]
    check_float_ops!(
        neon_f64_ops_match_scalar,
        neon::F64x2,
        f64,
        SimdTarget::Neon
    );

    macro_rules! check_byte_ops {
        ($name:ident, $vec:ty, $target:expr) => {
            #[test]
            fn $name() {
                if !$target.is_available() {
                    eprintln!("skipping: target unavailable");
                    return;
                }
                type V = $vec;
                const W: usize = <$vec as SimdBytes>::LANES;
                let a: Vec<u8> = (0..W as u32).map(|i| (i * 37 % 251) as u8).collect();
                let b: Vec<u8> = (0..W as u32).map(|i| (i * 91 % 253) as u8).collect();
                // SAFETY: availability checked above; W-byte buffers.
                unsafe {
                    let va = V::load(a.as_ptr());
                    let vb = V::load(b.as_ptr());
                    let mut out = vec![0u8; W];
                    va.xor(vb).store(out.as_mut_ptr());
                    for l in 0..W {
                        assert_eq!(out[l], a[l] ^ b[l], "xor lane {l}");
                    }
                    va.and(vb).store(out.as_mut_ptr());
                    for l in 0..W {
                        assert_eq!(out[l], a[l] & b[l], "and lane {l}");
                    }
                    V::splat(0x5a).store(out.as_mut_ptr());
                    assert!(out.iter().all(|&x| x == 0x5a));
                }
            }
        };
    }

    #[cfg(target_arch = "x86_64")]
    check_byte_ops!(avx2_byte_ops_match_scalar, avx2::B8x32, SimdTarget::Avx2);
    #[cfg(target_arch = "x86_64")]
    check_byte_ops!(
        avx512_byte_ops_match_scalar,
        avx512::B8x64,
        SimdTarget::Avx512
    );
    #[cfg(target_arch = "aarch64")]
    check_byte_ops!(neon_byte_ops_match_scalar, neon::B8x16, SimdTarget::Neon);
}
