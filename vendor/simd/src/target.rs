//! Runtime instruction-set detection and dispatch-target selection.

use std::sync::OnceLock;

/// Environment variable forcing a specific dispatch target (for tests
/// and benches): one of `scalar`, `avx2`, `avx512`, `neon`
/// (case-insensitive). An unknown name, or a target the current CPU
/// does not support, panics loudly at first use — a silently degraded
/// pin would fake test coverage.
pub const ENV_TARGET: &str = "QLDPC_SIMD_TARGET";

/// The widest `f32` lane count any compiled-in target can reach
/// (AVX-512: sixteen 32-bit lanes). Lane-width-derived constants (the
/// batch decoder's default tile cap) are written against this so they
/// stay a multiple of every dispatchable vector width.
pub const MAX_F32_LANES: usize = 16;

/// The widest `f64` lane count any compiled-in target can reach
/// (AVX-512: eight 64-bit lanes).
pub const MAX_F64_LANES: usize = 8;

/// A runtime-dispatchable instruction set.
///
/// `Scalar` is always available and is the bit-identity **oracle**: the
/// wide targets must reproduce its float stream exactly, per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdTarget {
    /// Portable scalar code (plus whatever the compiler auto-vectorizes
    /// at the build's baseline feature set).
    Scalar,
    /// 128-bit Advanced SIMD on aarch64.
    Neon,
    /// 256-bit AVX2 on x86-64.
    Avx2,
    /// 512-bit AVX-512 (F/BW/DQ/VL) on x86-64.
    Avx512,
}

impl SimdTarget {
    /// The stable lowercase name (also the [`ENV_TARGET`] spelling).
    pub const fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Neon => "neon",
            Self::Avx2 => "avx2",
            Self::Avx512 => "avx512",
        }
    }

    /// Parses a target name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Self::Scalar),
            "neon" => Some(Self::Neon),
            "avx2" => Some(Self::Avx2),
            "avx512" => Some(Self::Avx512),
            _ => None,
        }
    }

    /// Whether this target is compiled in for the current architecture
    /// *and* supported by the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            Self::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Self::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
                    && std::arch::is_x86_feature_detected!("avx512dq")
                    && std::arch::is_x86_feature_detected!("avx512vl")
            }
            #[cfg(target_arch = "aarch64")]
            Self::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(target_arch = "x86_64")]
            Self::Neon => false,
            #[cfg(target_arch = "aarch64")]
            Self::Avx2 | Self::Avx512 => false,
        }
    }

    /// `f32` lanes of one vector of this target.
    pub const fn f32_lanes(self) -> usize {
        match self {
            Self::Scalar => 1,
            Self::Neon => 4,
            Self::Avx2 => 8,
            Self::Avx512 => 16,
        }
    }

    /// `f64` lanes of one vector of this target.
    pub const fn f64_lanes(self) -> usize {
        match self {
            Self::Scalar => 1,
            Self::Neon => 2,
            Self::Avx2 => 4,
            Self::Avx512 => 8,
        }
    }

    /// `u8` lanes of one vector of this target.
    pub const fn byte_lanes(self) -> usize {
        match self {
            Self::Scalar => 1,
            Self::Neon => 16,
            Self::Avx2 => 32,
            Self::Avx512 => 64,
        }
    }
}

impl std::fmt::Display for SimdTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The widest target the current CPU supports, ignoring [`ENV_TARGET`]
/// (AVX-512 → AVX2 → NEON → scalar). Cached after the first call.
pub fn detected_target() -> SimdTarget {
    static DETECTED: OnceLock<SimdTarget> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        [SimdTarget::Avx512, SimdTarget::Avx2, SimdTarget::Neon]
            .into_iter()
            .find(|t| t.is_available())
            .unwrap_or(SimdTarget::Scalar)
    })
}

/// Resolves the process-wide dispatch target: the [`ENV_TARGET`]
/// override if set, the detected widest target otherwise. Cached after
/// the first call (changing the variable later has no effect).
///
/// # Panics
///
/// Panics if [`ENV_TARGET`] names an unknown or unsupported target —
/// a forced pin that silently fell back would fake coverage.
pub fn active_target() -> SimdTarget {
    static ACTIVE: OnceLock<SimdTarget> = OnceLock::new();
    *ACTIVE.get_or_init(|| resolve(std::env::var(ENV_TARGET).ok().as_deref()))
}

/// Pure resolution core behind [`active_target`] (separated for
/// testability: the cached path reads the real environment once).
fn resolve(env: Option<&str>) -> SimdTarget {
    match env {
        None | Some("") => detected_target(),
        Some(name) => {
            let target = SimdTarget::parse(name).unwrap_or_else(|| {
                panic!(
                    "{ENV_TARGET}={name:?} is not a known SIMD target \
                     (expected one of: scalar, avx2, avx512, neon)"
                )
            });
            assert!(
                target.is_available(),
                "{ENV_TARGET}={name:?} is not supported on this CPU \
                 (supported: {:?})",
                supported_targets()
                    .iter()
                    .map(|t| t.name())
                    .collect::<Vec<_>>()
            );
            target
        }
    }
}

/// Every target available on this machine, narrowest first (scalar is
/// always present). Equivalence suites iterate this list so each
/// compiled-in path is pinned against the scalar oracle.
pub fn supported_targets() -> &'static [SimdTarget] {
    static SUPPORTED: OnceLock<Vec<SimdTarget>> = OnceLock::new();
    SUPPORTED.get_or_init(|| {
        [
            SimdTarget::Scalar,
            SimdTarget::Neon,
            SimdTarget::Avx2,
            SimdTarget::Avx512,
        ]
        .into_iter()
        .filter(|t| t.is_available())
        .collect()
    })
}

/// A space-separated summary of the CPU's detected SIMD feature set,
/// for recording in bench artifacts (cross-machine trajectories are
/// uninterpretable without it).
pub fn cpu_features() -> &'static str {
    static FEATURES: OnceLock<String> = OnceLock::new();
    FEATURES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let probes: [(&str, bool); 12] = [
                ("sse2", std::arch::is_x86_feature_detected!("sse2")),
                ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
                ("popcnt", std::arch::is_x86_feature_detected!("popcnt")),
                ("avx", std::arch::is_x86_feature_detected!("avx")),
                ("avx2", std::arch::is_x86_feature_detected!("avx2")),
                ("fma", std::arch::is_x86_feature_detected!("fma")),
                ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
                ("avx512bw", std::arch::is_x86_feature_detected!("avx512bw")),
                ("avx512dq", std::arch::is_x86_feature_detected!("avx512dq")),
                ("avx512vl", std::arch::is_x86_feature_detected!("avx512vl")),
                ("avx512cd", std::arch::is_x86_feature_detected!("avx512cd")),
                (
                    "avx512vpopcntdq",
                    std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
                ),
            ];
            let on: Vec<&str> = probes
                .iter()
                .filter(|(_, det)| *det)
                .map(|(name, _)| *name)
                .collect();
            if on.is_empty() {
                "x86-64-baseline".to_string()
            } else {
                on.join(" ")
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            let mut on = Vec::new();
            if std::arch::is_aarch64_feature_detected!("neon") {
                on.push("neon");
            }
            if std::arch::is_aarch64_feature_detected!("sve") {
                on.push("sve");
            }
            if on.is_empty() {
                "aarch64-baseline".to_string()
            } else {
                on.join(" ")
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            "portable-scalar".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported_and_listed_first() {
        assert!(SimdTarget::Scalar.is_available());
        assert_eq!(supported_targets().first(), Some(&SimdTarget::Scalar));
    }

    #[test]
    fn parse_round_trips_every_name() {
        for t in [
            SimdTarget::Scalar,
            SimdTarget::Neon,
            SimdTarget::Avx2,
            SimdTarget::Avx512,
        ] {
            assert_eq!(SimdTarget::parse(t.name()), Some(t));
            assert_eq!(SimdTarget::parse(&t.name().to_uppercase()), Some(t));
        }
        assert_eq!(SimdTarget::parse("sse9"), None);
    }

    #[test]
    fn resolve_defaults_to_detection() {
        assert_eq!(resolve(None), detected_target());
        assert_eq!(resolve(Some("")), detected_target());
        assert_eq!(resolve(Some("scalar")), SimdTarget::Scalar);
        assert_eq!(resolve(Some("SCALAR")), SimdTarget::Scalar);
    }

    #[test]
    #[should_panic(expected = "not a known SIMD target")]
    fn resolve_rejects_unknown_names() {
        resolve(Some("warp9"));
    }

    #[test]
    fn detected_target_is_supported() {
        assert!(detected_target().is_available());
        assert!(supported_targets().contains(&detected_target()));
        assert!(supported_targets().contains(&active_target()));
    }

    #[test]
    fn lane_widths_divide_the_max() {
        for &t in supported_targets() {
            assert_eq!(MAX_F32_LANES % t.f32_lanes(), 0, "{t}");
            assert_eq!(MAX_F64_LANES % t.f64_lanes(), 0, "{t}");
        }
    }

    #[test]
    fn cpu_features_is_nonempty_and_cached() {
        let a = cpu_features();
        assert!(!a.is_empty());
        assert_eq!(a.as_ptr(), cpu_features().as_ptr());
    }
}
