//! Safe, internally dispatched helpers over `u64` words for the
//! bit-sliced GF(2) kernels.
//!
//! These are exact integer ops — every target produces identical words
//! and counts — so unlike the float kernels they need no oracle
//! contract, just a correctness test per target.

use crate::target::{active_target, SimdTarget};

/// `dst[i] ^= src[i]` for every word (lengths must match).
///
/// Dispatches to a wide XOR on the active target; the scalar loop is
/// the fallback everywhere else.
pub fn xor_words(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "xor_words length mismatch");
    match active_target() {
        // SAFETY: target availability was verified by the dispatcher.
        #[cfg(target_arch = "x86_64")]
        SimdTarget::Avx512 => unsafe { xor_words_avx512(dst, src) },
        #[cfg(target_arch = "x86_64")]
        SimdTarget::Avx2 => unsafe { xor_words_avx2(dst, src) },
        _ => xor_words_scalar(dst, src),
    }
}

/// Total population count over `words`.
///
/// Dispatches to `vpopcntq` when the CPU has AVX-512 VPOPCNTDQ, to a
/// `popcnt`-enabled scalar loop when the `popcnt` instruction is
/// available (the baseline x86-64 build cannot assume it), and to the
/// portable loop otherwise.
pub fn popcount_words(words: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if active_target() == SimdTarget::Avx512
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        {
            // SAFETY: both feature sets verified just above.
            return unsafe { popcount_words_avx512(words) };
        }
        if active_target() != SimdTarget::Scalar && std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: popcnt availability verified just above.
            return unsafe { popcount_words_popcnt(words) };
        }
    }
    popcount_words_scalar(words)
}

fn xor_words_scalar(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

fn popcount_words_scalar(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xor_words_avx2(dst: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let wide = n - n % 4;
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0;
    while i < wide {
        let a = _mm256_loadu_si256(d.add(i).cast());
        let b = _mm256_loadu_si256(s.add(i).cast());
        _mm256_storeu_si256(d.add(i).cast(), _mm256_xor_si256(a, b));
        i += 4;
    }
    xor_words_scalar(&mut dst[wide..], &src[wide..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn xor_words_avx512(dst: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let wide = n - n % 8;
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0;
    while i < wide {
        let a = _mm512_loadu_si512(d.add(i).cast());
        let b = _mm512_loadu_si512(s.add(i).cast());
        _mm512_storeu_si512(d.add(i).cast(), _mm512_xor_si512(a, b));
        i += 8;
    }
    xor_words_scalar(&mut dst[wide..], &src[wide..]);
}

/// The plain loop, but compiled with the `popcnt` feature so
/// `count_ones` lowers to one instruction per word instead of the
/// baseline SWAR sequence.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn popcount_words_popcnt(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn popcount_words_avx512(words: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = words.len();
    let wide = n - n % 8;
    let p = words.as_ptr();
    let mut acc = _mm512_setzero_si512();
    let mut i = 0;
    while i < wide {
        let w = _mm512_loadu_si512(p.add(i).cast());
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(w));
        i += 8;
    }
    let mut total = _mm512_reduce_add_epi64(acc) as u64;
    total += popcount_words_scalar(&words[wide..]);
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random words (splitmix64).
    fn words(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn xor_matches_scalar_on_all_targets_and_tails() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 31, 64, 100] {
            let src = words(n, 7);
            let mut want = words(n, 99);
            let mut got = want.clone();
            xor_words_scalar(&mut want, &src);
            // The public entry dispatches to the active target.
            xor_words(&mut got, &src);
            assert_eq!(got, want, "n={n}");
            #[cfg(target_arch = "x86_64")]
            {
                if SimdTarget::Avx2.is_available() {
                    let mut got = words(n, 99);
                    // SAFETY: availability checked.
                    unsafe { xor_words_avx2(&mut got, &src) };
                    assert_eq!(got, want, "avx2 n={n}");
                }
                if SimdTarget::Avx512.is_available() {
                    let mut got = words(n, 99);
                    // SAFETY: availability checked.
                    unsafe { xor_words_avx512(&mut got, &src) };
                    assert_eq!(got, want, "avx512 n={n}");
                }
            }
        }
    }

    #[test]
    fn popcount_matches_scalar_on_all_targets_and_tails() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 100] {
            let ws = words(n, 3);
            let want = popcount_words_scalar(&ws);
            assert_eq!(popcount_words(&ws), want, "n={n}");
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("popcnt") {
                    // SAFETY: availability checked.
                    assert_eq!(unsafe { popcount_words_popcnt(&ws) }, want, "popcnt n={n}");
                }
                if SimdTarget::Avx512.is_available()
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
                {
                    // SAFETY: availability checked.
                    assert_eq!(unsafe { popcount_words_avx512(&ws) }, want, "vpopcnt n={n}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_rejects_mismatched_lengths() {
        xor_words(&mut [0; 3], &[0; 4]);
    }
}
