//! Hermetic portable-SIMD shim for the BP-SF workspace.
//!
//! Like the other `vendor/` crates (`rand`, `crossbeam`, …) this is an
//! **offline stand-in**: the workspace must build without the network,
//! so instead of depending on `pulp`/`wide`/`std::simd` (the last is
//! nightly-only) we vendor exactly the subset of portable-SIMD
//! machinery the decoders need:
//!
//! * [`SimdTarget`] — the runtime instruction-set dispatcher. Detection
//!   runs once (`is_x86_feature_detected!`-style, cached in a
//!   `OnceLock`) and selects AVX-512 → AVX2 → NEON → scalar; the
//!   [`ENV_TARGET`] environment variable (`QLDPC_SIMD_TARGET`) forces a
//!   specific target so tests and benches can pin every compiled-in
//!   path.
//! * [`AlignedSlab`] — a 64-byte-aligned growable buffer for the batch
//!   decoder's structure-of-arrays message slabs (a cache line on
//!   x86-64, and the full vector width of AVX-512).
//! * [`SimdF`] / [`SimdBytes`] — explicit wide vector operations
//!   (`f32x8`/`f32x16`/`f64x4`/`f64x8`/`u32xN`/`u64xN`/`u8xN`:
//!   load/store/min/max/abs/sign-xor(neg)/compare-blend selects), one
//!   implementation per instruction set under the `avx2`, `avx512` and
//!   `neon` modules (each compiled only on its architecture, so naming
//!   them as links here would break rustdoc cross-builds). The ops are
//!   chosen so that every lane executes exactly
//!   the scalar IEEE-754 operation the reference decoder performs —
//!   vectorizing over *independent* lanes is then bit-exact by
//!   construction.
//! * [`xor_words`] / [`popcount_words`] — safe, internally dispatched
//!   helpers over `u64` words for the bit-sliced GF(2) kernels
//!   (wide XOR, vectorized or `popcnt`-enabled population count).
//!
//! # Safety model
//!
//! The per-ISA vector types expose `unsafe` methods whose single
//! contract is *"the CPU supports this type's instruction set"*. The
//! decoders uphold it structurally: wide kernels are monomorphized
//! inside `#[target_feature]` wrapper functions that are only reachable
//! through [`SimdTarget`] dispatch, and a target is only ever dispatched
//! after its runtime feature check succeeded. Everything else in this
//! crate — detection, slabs, the word helpers — is safe.

mod slab;
mod target;
mod vec;
mod words;

pub use slab::{AlignedSlab, SLAB_ALIGN};
pub use target::{
    active_target, cpu_features, detected_target, supported_targets, SimdTarget, ENV_TARGET,
    MAX_F32_LANES, MAX_F64_LANES,
};
pub use vec::{SimdBytes, SimdF};
pub use words::{popcount_words, xor_words};

#[cfg(target_arch = "aarch64")]
pub use vec::neon;
#[cfg(target_arch = "x86_64")]
pub use vec::{avx2, avx512};
