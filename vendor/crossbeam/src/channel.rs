//! Unbounded and bounded MPMC channels with cloneable senders and
//! receivers.
//!
//! One `Inner` backs both flavors: a bounded channel simply carries a
//! capacity and a second condvar (`not_full`) that blocked senders park
//! on. `bounded(0)` (crossbeam's rendezvous channel) is **not**
//! supported — the decoding-service scheduler has no use for it and the
//! semantics would complicate the shim; the constructor panics instead of
//! silently deadlocking.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`]: the channel is at capacity
/// (`Full`) or every receiver is gone (`Disconnected`); the unsent
/// message rides along either way.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] once the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders may still be alive).
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty, disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout (senders may still be alive).
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty, disconnected channel")
            }
        }
    }
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    /// Parked senders of a bounded channel; never waited on when
    /// `capacity` is `None`.
    not_full: Condvar,
    /// `None` ⇒ unbounded.
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half; clone freely.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; clone freely (messages go to whichever clone pops
/// first — MPMC work-queue semantics).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

fn new_pair<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_pair(None)
}

/// Creates a bounded channel holding at most `cap` messages:
/// [`Sender::send`] blocks and [`Sender::try_send`] returns
/// [`TrySendError::Full`] while it is at capacity.
///
/// # Panics
///
/// Panics if `cap == 0` — the rendezvous channel is outside the shim's
/// supported subset (see the module docs).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
    new_pair(Some(cap))
}

impl<T> Sender<T> {
    /// Enqueues `msg`, waking one blocked receiver; on a bounded channel
    /// at capacity, blocks until a slot frees up (or every receiver is
    /// dropped).
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
        if let Some(cap) = self.inner.capacity {
            while queue.len() >= cap {
                if self.inner.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                queue = self
                    .inner
                    .not_full
                    .wait(queue)
                    .expect("channel mutex poisoned");
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.inner.ready.notify_one();
        Ok(())
    }

    /// Non-blocking send: fails with [`TrySendError::Full`] when a bounded
    /// channel is at capacity (the backpressure signal the decoding
    /// service turns into `Overloaded`) and with
    /// [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
        if let Some(cap) = self.inner.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.inner.ready.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("channel mutex poisoned")
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake everyone so blocked receivers can error
            // out. Taking the queue mutex first is what makes the notify
            // reliable: a receiver that has already checked `senders`
            // (under the mutex) but not yet parked on the condvar would
            // otherwise miss this wakeup and sleep forever.
            let _guard = self.inner.queue.lock().expect("channel mutex poisoned");
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    fn pop(queue: &mut VecDeque<T>, inner: &Inner<T>) -> Option<T> {
        let msg = queue.pop_front();
        if msg.is_some() && inner.capacity.is_some() {
            inner.not_full.notify_one();
        }
        msg
    }

    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
        loop {
            if let Some(msg) = Self::pop(&mut queue, &self.inner) {
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .inner
                .ready
                .wait(queue)
                .expect("channel mutex poisoned");
        }
    }

    /// Blocks until a message arrives, every sender is dropped, or
    /// `timeout` elapses — the scheduler's batch-window wait (the shim's
    /// stand-in for crossbeam's `select!`/`after` machinery).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
        loop {
            if let Some(msg) = Self::pop(&mut queue, &self.inner) {
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (q, wait) = self
                .inner
                .ready
                .wait_timeout(queue, remaining)
                .expect("channel mutex poisoned");
            queue = q;
            if wait.timed_out() {
                // One final pop attempt below via the loop head; the next
                // deadline check will return Timeout if still empty.
                if queue.is_empty() && self.inner.senders.load(Ordering::Acquire) != 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    /// Non-blocking pop.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
        if let Some(msg) = Self::pop(&mut queue, &self.inner) {
            return Ok(msg);
        }
        if self.inner.senders.load(Ordering::Acquire) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("channel mutex poisoned")
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver: wake parked senders so they can error out.
            // The mutex is held for the same lost-wakeup reason as in
            // `Sender::drop` — a sender between its `receivers` check and
            // its park must not miss the only notification it will get.
            let _guard = self.inner.queue.lock().expect("channel mutex poisoned");
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_within_one_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_last_receiver_drops() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(4).unwrap();
        assert_eq!(rx.try_recv(), Ok(4));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn workers_drain_shared_queue() {
        let (tx, rx) = unbounded::<usize>();
        let (out_tx, out_rx) = unbounded::<usize>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            let out_tx = out_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(v) = rx.recv() {
                    out_tx.send(v * 2).unwrap();
                }
            }));
        }
        drop(rx);
        drop(out_tx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got: Vec<usize> = (0..100).map(|_| out_rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn bounded_try_send_reports_full_then_accepts_after_pop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_send_blocks_until_slot_frees() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            // Blocks until the main thread pops.
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn bounded_sender_unblocks_with_error_when_receivers_vanish() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u32>(4);
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(10));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_send_before_deadline() {
        let (tx, rx) = unbounded::<u32>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            tx.send(5).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(5));
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u32>(0);
    }
}
