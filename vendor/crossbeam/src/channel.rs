//! Unbounded MPMC channel with cloneable senders and receivers.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] once the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half; clone freely.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; clone freely (messages go to whichever clone pops
/// first — MPMC work-queue semantics).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, waking one blocked receiver.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        self.inner
            .queue
            .lock()
            .expect("channel mutex poisoned")
            .push_back(msg);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake everyone so blocked receivers can error out.
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .inner
                .ready
                .wait(queue)
                .expect("channel mutex poisoned");
        }
    }

    /// Non-blocking pop, `None` when currently empty (regardless of sender
    /// liveness).
    pub fn try_recv(&self) -> Option<T> {
        self.inner
            .queue
            .lock()
            .expect("channel mutex poisoned")
            .pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_last_receiver_drops() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn workers_drain_shared_queue() {
        let (tx, rx) = unbounded::<usize>();
        let (out_tx, out_rx) = unbounded::<usize>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            let out_tx = out_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(v) = rx.recv() {
                    out_tx.send(v * 2).unwrap();
                }
            }));
        }
        drop(rx);
        drop(out_tx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got: Vec<usize> = (0..100).map(|_| out_rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        for h in handles {
            h.join().unwrap();
        }
    }
}
