//! Scoped threads, adapted from [`std::thread::scope`] to crossbeam's
//! `Result`-returning API.

use std::any::Any;

/// A scope handle; crossbeam passes it to every spawned closure (the call
/// sites here all ignore it as `|_|`), and it allows nested spawns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its value, or the panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread that may borrow from the enclosing scope. The
    /// closure receives this scope (crossbeam's signature); it is joined
    /// implicitly at scope exit if not joined explicitly.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// every thread is joined before this returns.
///
/// Matches crossbeam's signature: `Ok(result)` normally; an `Err` carrying
/// the panic payload if a spawned thread panicked and its handle was not
/// joined (std re-raises such panics, which we capture here).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn joined_panic_is_a_handle_error_not_a_scope_error() {
        let r = scope(|s| {
            let h = s.spawn(|_| panic!("contained"));
            assert!(h.join().is_err());
            42
        });
        assert_eq!(r.unwrap(), 42);
    }
}
