//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The workspace builds hermetically, so the two crossbeam facilities it
//! uses are reimplemented on top of std:
//!
//! * [`thread::scope`] — scoped spawning, a thin adapter over
//!   [`std::thread::scope`] preserving crossbeam's `Result`-returning
//!   signature and the `|scope| scope.spawn(|_| …)` closure shape.
//! * [`channel`] — an unbounded MPMC channel (cloneable `Sender` **and**
//!   `Receiver`) built from `Mutex<VecDeque>` + `Condvar`. Throughput is
//!   adequate for the decoder worker pools here (hundreds of jobs per
//!   decode), not for fine-grained message storms.

pub mod channel;
pub mod thread;
