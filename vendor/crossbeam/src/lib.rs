//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The workspace builds hermetically, so the two crossbeam facilities it
//! uses are reimplemented on top of std:
//!
//! * [`thread::scope`] — scoped spawning, a thin adapter over
//!   [`std::thread::scope`] preserving crossbeam's `Result`-returning
//!   signature and the `|scope| scope.spawn(|_| …)` closure shape.
//! * [`channel`] — MPMC channels (cloneable `Sender` **and** `Receiver`)
//!   built from `Mutex<VecDeque>` + two `Condvar`s. The implemented API
//!   subset is:
//!   - [`channel::unbounded`] with `send` / `recv` / `try_recv`,
//!   - [`channel::bounded`] (capacity ≥ 1; `bounded(0)` rendezvous
//!     channels are rejected) adding blocking-at-capacity `send` and
//!     non-blocking `try_send` → `TrySendError::Full`, the backpressure
//!     primitive of `qldpc-server`'s shard queues,
//!   - [`channel::Receiver::recv_timeout`] — the timed wait the
//!     micro-batching scheduler uses for its `max_wait` window instead
//!     of crossbeam's `select!`/`after` machinery (not implemented),
//!   - `len` / `is_empty` on both halves (used for queue-depth metrics
//!     and steal-victim selection).
//!
//! Channel throughput is adequate for the decoder worker pools and the
//! decode-service scheduler here (a lock round-trip per message), not
//! for fine-grained message storms.

pub mod channel;
pub mod thread;
