//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the external PRNG dependency is replaced by this vendored shim. It
//! implements exactly the rand-0.9-style surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`), matching rand's reproducibility contract
//!   (same seed ⇒ same stream) though not rand's exact stream.
//! * [`Rng::random`], [`Rng::random_bool`], [`Rng::random_range`] — the
//!   0.9 method names.
//! * [`seq::SliceRandom`] — `shuffle` / `partial_shuffle` / `choose`.
//!
//! Anything outside this subset is intentionally absent; add it here if a
//! new call site needs it.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a `T` uniformly from its "natural" distribution (the unit
/// interval for floats, the full domain for integers and bool).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift (Lemire) reduction of a random word onto `[0, span)`.
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn` receivers, hence `?Sized` bounds
/// at call sites).
pub trait Rng: RngCore {
    /// A value from `T`'s standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }

    /// A value uniform over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1_000 {
            let x = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
            let f = rng.random_range(2.0f64..5.0);
            assert!((2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
