//! Named generators; only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// A deterministic xoshiro256++ generator.
///
/// Unlike rand's ChaCha-based `StdRng` this is not cryptographically
/// secure; it is statistically strong, fast, `Clone`, `Send`, and — the
/// property the simulators rely on — a pure function of its
/// `seed_from_u64` seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding for xoshiro.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
