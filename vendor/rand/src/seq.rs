//! Slice sampling helpers (`rand::seq` subset).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Partially shuffles the slice so that `amount` uniformly chosen
    /// elements land (in random order) at the **end**; returns
    /// `(chosen, rest)` like rand does.
    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);

    /// One uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
    }

    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let len = self.len();
        let pivot = len.saturating_sub(amount);
        for i in (pivot..len).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
        let (rest, chosen) = self.split_at_mut(pivot);
        (chosen, rest)
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn partial_shuffle_returns_amount_chosen() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        let (chosen, rest) = v.partial_shuffle(&mut rng, 6);
        assert_eq!(chosen.len(), 6);
        assert_eq!(rest.len(), 14);
        let mut all: Vec<usize> = chosen.iter().chain(rest.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
